// IBFT (Quorum, §5.2): leader-based PBFT-style consensus with PRE-PREPARE /
// PREPARE / COMMIT phases over 2f+1 quorums and immediate deterministic
// finality. Quorum's design never drops a client request, so a sustained
// overload grows the pending set until the leader can no longer assemble a
// proposal within the round timeout — the collapse of §6.3.
#ifndef SRC_CONSENSUS_IBFT_H_
#define SRC_CONSENSUS_IBFT_H_

#include "src/chain/node.h"

namespace diablo {

class IbftEngine : public ConsensusEngine {
 public:
  explicit IbftEngine(ChainContext* ctx) : ConsensusEngine(ctx) {}

  void Start() override;
  SimDuration MinRescheduleDelay() const override;

 private:
  void Round();

  uint64_t height_ = 1;
  uint64_t round_ = 0;          // increments on view changes too
  int consecutive_failures_ = 0;
};

}  // namespace diablo

#endif  // SRC_CONSENSUS_IBFT_H_
