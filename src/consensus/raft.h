// Raft (Quorum's crash-fault-tolerant option, §5.2): a stable leader
// replicates blocks to followers and commits on a majority (f+1 of 2f+1)
// of acknowledgements — one round trip instead of IBFT's three phases, no
// Byzantine tolerance. Quorum's documentation pairs it with "minting"
// blocks as soon as transactions arrive, so there is no fixed block period,
// only a floor.
#ifndef SRC_CONSENSUS_RAFT_H_
#define SRC_CONSENSUS_RAFT_H_

#include "src/chain/node.h"

namespace diablo {

class RaftEngine : public ConsensusEngine {
 public:
  explicit RaftEngine(ChainContext* ctx) : ConsensusEngine(ctx) {}

  void Start() override;
  SimDuration MinRescheduleDelay() const override;

 private:
  void Round();

  uint64_t height_ = 1;
  int leader_ = 0;  // stable unless it stalls (crash faults are injected
                    // through Network::SetPartitioned)
};

}  // namespace diablo

#endif  // SRC_CONSENSUS_RAFT_H_
