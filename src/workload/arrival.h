// Expands a trace into concrete per-transaction submission times.
#ifndef SRC_WORKLOAD_ARRIVAL_H_
#define SRC_WORKLOAD_ARRIVAL_H_

#include <vector>

#include "src/support/rng.h"
#include "src/support/time.h"
#include "src/workload/trace.h"

namespace diablo {

enum class ArrivalProcess {
  kUniform,  // evenly paced within each second (diablo's scheduled workers)
  kPoisson,  // exponential inter-arrivals at the second's rate
};

// Submission times for every transaction of the trace, sorted ascending.
// With kPoisson, `rng` drives the inter-arrival draws (may be null for
// kUniform).
std::vector<SimTime> ExpandArrivals(const Trace& trace, ArrivalProcess process,
                                    Rng* rng);

}  // namespace diablo

#endif  // SRC_WORKLOAD_ARRIVAL_H_
