#include "src/workload/dapps.h"

#include <stdexcept>

#include "src/support/strings.h"

namespace diablo {
namespace {

// Stock order frequencies mirror the §3 opening-burst magnitudes:
// google 800 : amazon 1300 : facebook 3000 : microsoft 4000 : apple 10000.
constexpr struct {
  const char* function;
  uint64_t weight;
} kBuyMix[] = {
    {"buy_google", 8},   {"buy_amazon", 13}, {"buy_facebook", 30},
    {"buy_microsoft", 40}, {"buy_apple", 100},
};

Invocation ExchangeInvocation(uint64_t i) {
  uint64_t total = 0;
  for (const auto& entry : kBuyMix) {
    total += entry.weight;
  }
  uint64_t slot = (i * 2654435761ULL) % total;
  for (const auto& entry : kBuyMix) {
    if (slot < entry.weight) {
      return Invocation{entry.function, {}};
    }
    slot -= entry.weight;
  }
  return Invocation{"buy_apple", {}};
}

}  // namespace

Invocation DappWorkload::InvocationFor(uint64_t i) const {
  if (fixed.has_value()) {
    return *fixed;
  }
  if (name == "exchange") {
    return ExchangeInvocation(i);
  }
  // Per-stock NASDAQ bursts (§6.5): every order buys that one stock.
  for (const char* stock : {"google", "amazon", "facebook", "microsoft", "apple"}) {
    if (name == stock) {
      return Invocation{std::string("buy_") + stock, {}};
    }
  }
  if (name == "dota") {
    // The §4 workload spec invokes update(1, 1).
    return Invocation{"update", {1, 1}};
  }
  if (name == "fifa") {
    return Invocation{"add", {}};
  }
  if (name == "uber") {
    // Customer positions spread over the 10,000 x 10,000 grid.
    const int64_t cx = static_cast<int64_t>((i * 7919) % 10000);
    const int64_t cy = static_cast<int64_t>((i * 104729) % 10000);
    return Invocation{"check_distance", {cx, cy}};
  }
  if (name == "youtube") {
    // ~1 KiB of video metadata/payload per upload; far over the AVM's
    // 128-byte state entries.
    return Invocation{"upload", {1024}};
  }
  throw std::logic_error("unhandled dapp: " + name);
}

DappWorkload GetDappWorkload(std::string_view name) {
  const std::string key = ToLower(name);
  if (key == "exchange" || key == "nasdaq" || key == "gafam") {
    return DappWorkload{"exchange", "exchange", NasdaqGafamTrace(), std::nullopt};
  }
  if (key == "dota") {
    return DappWorkload{"dota", "dota", DotaTrace(), std::nullopt};
  }
  if (key == "fifa") {
    return DappWorkload{"fifa", "counter", FifaTrace(), std::nullopt};
  }
  if (key == "uber") {
    return DappWorkload{"uber", "uber", UberTrace(), std::nullopt};
  }
  if (key == "youtube") {
    return DappWorkload{"youtube", "youtube", YoutubeTrace(), std::nullopt};
  }
  throw std::invalid_argument("unknown DApp workload: " + std::string(name));
}

const std::vector<std::string>& AllDappNames() {
  static const std::vector<std::string>* const kNames = new std::vector<std::string>{
      "exchange", "dota", "fifa", "uber", "youtube"};
  return *kNames;
}

}  // namespace diablo
