#include "src/workload/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/support/rng.h"
#include "src/support/strings.h"

namespace diablo {
namespace {

// Deterministic per-second jitter in [0, 1).
double NoiseAt(std::string_view name, size_t second) {
  uint64_t state = 0xD1AB10;
  for (const char c : name) {
    state = state * 131 + static_cast<uint64_t>(c);
  }
  state += second * 0x9e3779b97f4a7c15ULL;
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

struct StockSpec {
  std::string_view name;
  double peak;
};

constexpr StockSpec kStocks[] = {
    {"google", 800.0},    {"amazon", 1300.0},  {"facebook", 3000.0},
    {"microsoft", 4000.0}, {"apple", 10000.0},
};

constexpr size_t kNasdaqDuration = 180;  // "runs for 3 minutes" (§3)

}  // namespace

double Trace::AverageTps() const {
  if (tps.empty()) {
    return 0.0;
  }
  return TotalTxs() / static_cast<double>(tps.size());
}

double Trace::PeakTps() const {
  double peak = 0.0;
  for (const double rate : tps) {
    peak = std::max(peak, rate);
  }
  return peak;
}

double Trace::TotalTxs() const {
  double total = 0.0;
  for (const double rate : tps) {
    total += rate;
  }
  return total;
}

Trace Trace::Scaled(double factor) const {
  Trace scaled = *this;
  for (double& rate : scaled.tps) {
    rate *= factor;
  }
  return scaled;
}

Trace ConstantTrace(double tps, int seconds) {
  Trace trace;
  trace.name = StrFormat("constant-%.0f", tps);
  trace.tps.assign(static_cast<size_t>(seconds), tps);
  return trace;
}

Trace NasdaqStockTrace(std::string_view stock) {
  for (const StockSpec& spec : kStocks) {
    if (spec.name == stock) {
      Trace trace;
      trace.name = std::string(stock);
      trace.tps.reserve(kNasdaqDuration);
      for (size_t s = 0; s < kNasdaqDuration; ++s) {
        // Opening burst decaying geometrically over the first seconds into a
        // low tail. The tail is set so that the *accumulated* GAFAM workload
        // matches §6.1's numbers (168 TPS average, 25-140 TPS tail): the
        // paper's per-stock tail (10-60 TPS) and accumulated average are
        // mutually inconsistent, and the accumulated series is the one the
        // evaluation uses.
        const double burst = spec.peak * std::pow(0.1, static_cast<double>(s));
        const double tail = 5.0 + 11.0 * NoiseAt(stock, s);
        trace.tps.push_back(std::max(burst, tail));
      }
      return trace;
    }
  }
  throw std::invalid_argument("unknown NASDAQ stock: " + std::string(stock));
}

Trace NasdaqGafamTrace() {
  Trace trace;
  trace.name = "gafam";
  trace.tps.assign(kNasdaqDuration, 0.0);
  double first_second = 0.0;
  for (const StockSpec& spec : kStocks) {
    const Trace stock = NasdaqStockTrace(spec.name);
    first_second += stock.tps[0];
    for (size_t s = 0; s < kNasdaqDuration; ++s) {
      trace.tps[s] += stock.tps[s];
    }
  }
  // §3 reports a 19,800 TPS accumulated peak while the five per-stock
  // bursts sum to 19,100; scale to the published peak.
  const double factor = 19800.0 / first_second;
  for (double& rate : trace.tps) {
    rate *= factor;
  }
  return trace;
}

Trace DotaTrace() {
  Trace trace;
  trace.name = "dota";
  trace.tps.reserve(276);
  for (size_t s = 0; s < 276; ++s) {
    // "almost constant update rate of about 13,000 TPS" (§3); the workload
    // spec example drives 3 clients at 4432-4438 TPS each.
    trace.tps.push_back(3.0 * (4432.0 + 6.0 * NoiseAt("dota", s)));
  }
  return trace;
}

Trace FifaTrace() {
  Trace trace;
  trace.name = "fifa";
  trace.tps.reserve(176);
  for (size_t s = 0; s < 176; ++s) {
    // Rate varying between 1,416 and 5,305 requests per second (§3),
    // averaging ~3,500: a slow swell with per-second jitter.
    const double phase = 2.0 * M_PI * static_cast<double>(s) / 176.0;
    const double base = 3360.0 - 1800.0 * std::cos(phase);
    const double jitter = 290.0 * (NoiseAt("fifa", s) - 0.5);
    trace.tps.push_back(std::clamp(base + jitter, 1416.0, 5305.0));
  }
  return trace;
}

Trace UberTrace() {
  Trace trace;
  trace.name = "uber";
  trace.tps.reserve(120);
  for (size_t s = 0; s < 120; ++s) {
    // 810-900 TPS for 120 s (§6.4), around the 864 TPS world-wide estimate.
    trace.tps.push_back(810.0 + 90.0 * NoiseAt("uber", s));
  }
  return trace;
}

Trace YoutubeTrace() {
  Trace trace;
  trace.name = "youtube";
  trace.tps.reserve(120);
  for (size_t s = 0; s < 120; ++s) {
    // 467 TPS in 2007 x 83 growth = 38,761 TPS (§3).
    trace.tps.push_back(38761.0 * (0.99 + 0.02 * NoiseAt("youtube", s)));
  }
  return trace;
}

bool TraceFromCsv(std::string_view csv_text, Trace* out) {
  out->name = "csv";
  out->tps.clear();
  for (const std::string& raw : Split(csv_text, '\n')) {
    const std::string line = Trim(raw);
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 2) {
      return false;
    }
    int64_t second = 0;
    double tps = 0;
    if (!ParseInt64(fields[0], &second)) {
      // A single header row is tolerated.
      if (out->tps.empty() && ToLower(Trim(fields[0])) == "second") {
        continue;
      }
      return false;
    }
    if (!ParseDouble(fields[1], &tps) || second < 0 || tps < 0) {
      return false;
    }
    if (static_cast<size_t>(second) >= out->tps.size()) {
      out->tps.resize(static_cast<size_t>(second) + 1, 0.0);
    }
    out->tps[static_cast<size_t>(second)] = tps;
  }
  return !out->tps.empty();
}

std::string TraceToCsv(const Trace& trace) {
  std::string out = "second,tps\n";
  for (size_t s = 0; s < trace.tps.size(); ++s) {
    out += StrFormat("%zu,%.3f\n", s, trace.tps[s]);
  }
  return out;
}

Trace GetTrace(std::string_view name) {
  const std::string key = ToLower(name);
  if (key == "gafam" || key == "nasdaq") {
    return NasdaqGafamTrace();
  }
  if (key == "dota") {
    return DotaTrace();
  }
  if (key == "fifa") {
    return FifaTrace();
  }
  if (key == "uber") {
    return UberTrace();
  }
  if (key == "youtube") {
    return YoutubeTrace();
  }
  for (const StockSpec& spec : kStocks) {
    if (key == spec.name) {
      return NasdaqStockTrace(spec.name);
    }
  }
  throw std::invalid_argument("unknown trace: " + std::string(name));
}

}  // namespace diablo
