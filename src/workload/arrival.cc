#include "src/workload/arrival.h"

#include <algorithm>
#include <cmath>

namespace diablo {

std::vector<SimTime> ExpandArrivals(const Trace& trace, ArrivalProcess process,
                                    Rng* rng) {
  std::vector<SimTime> arrivals;
  arrivals.reserve(static_cast<size_t>(trace.TotalTxs()) + trace.duration_seconds());
  // Fractional per-second rates accumulate so that e.g. 0.5 TPS sends one
  // transaction every two seconds instead of none.
  double carry = 0.0;
  for (size_t s = 0; s < trace.tps.size(); ++s) {
    const double rate = trace.tps[s] + carry;
    const int64_t count = static_cast<int64_t>(rate);
    carry = rate - static_cast<double>(count);
    if (count <= 0) {
      continue;
    }
    const SimTime base = Seconds(static_cast<int64_t>(s));
    if (process == ArrivalProcess::kUniform) {
      const double step = 1e9 / static_cast<double>(count);
      for (int64_t i = 0; i < count; ++i) {
        arrivals.push_back(base +
                           static_cast<SimTime>(step * static_cast<double>(i)));
      }
    } else {
      double t = 0.0;
      const double mean_gap = 1.0 / static_cast<double>(count);
      for (int64_t i = 0; i < count; ++i) {
        t += rng->NextExponential(mean_gap);
        arrivals.push_back(base + SecondsF(std::min(t, 0.999999)));
      }
    }
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

}  // namespace diablo
