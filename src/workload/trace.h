// Workload traces: target submission rate per second of the run.
//
// The five DApp traces reproduce the shapes the paper reports in §3 /
// Table 2 from the original centralized services (NASDAQ, Steam/Dota 2,
// FIFA '98, Uber NYC, YouTube). Generation is deterministic: the "noise" in
// a trace derives from a hash of (trace name, second).
#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

namespace diablo {

struct Trace {
  std::string name;
  std::vector<double> tps;  // target transactions per second, one per second

  size_t duration_seconds() const { return tps.size(); }
  double AverageTps() const;
  double PeakTps() const;
  double TotalTxs() const;

  // Returns a copy with every rate multiplied by `factor` (quick-run
  // downscaling; shapes are preserved).
  Trace Scaled(double factor) const;
};

// Constant rate for `seconds` (the §6.2/§6.3 synthetic workloads).
Trace ConstantTrace(double tps, int seconds);

// One NASDAQ stock at the 9 AM opening: a burst of `peak` TPS decaying over
// a few seconds into a 10-60 TPS tail (§3). Stocks: "google" (800),
// "amazon" (1300), "facebook" (3000), "microsoft" (4000), "apple" (10000).
Trace NasdaqStockTrace(std::string_view stock);

// The accumulated GAFAM workload: 3 minutes, 19,800 TPS peak, 25-140 TPS
// tail (§3).
Trace NasdaqGafamTrace();

// Dota 2: 276 s at an almost constant ~13,000 TPS (§3).
Trace DotaTrace();

// FIFA '98 final: 176 s between 1,416 and 5,305 requests per second (§3).
Trace FifaTrace();

// Uber world-wide estimate: ~864 TPS; the §6.4 runs span 810-900 TPS over
// 120 s.
Trace UberTrace();

// YouTube uploads scaled to 2021: ~38,761 TPS (§3), 120 s.
Trace YoutubeTrace();

// Lookup by name: "constant" is not included; names are "google", "amazon",
// "facebook", "microsoft", "apple", "gafam"/"nasdaq", "dota", "fifa",
// "uber", "youtube". Throws std::invalid_argument on unknown names.
Trace GetTrace(std::string_view name);

// CSV interchange for external traces: "second,tps" rows (header optional;
// gaps filled with zero). Returns false on malformed input.
bool TraceFromCsv(std::string_view csv_text, Trace* out);
std::string TraceToCsv(const Trace& trace);

}  // namespace diablo

#endif  // SRC_WORKLOAD_TRACE_H_
