// Binding between the §3 DApps and their workloads: which contract and
// functions a trace invokes, with what arguments and payload sizes.
#ifndef SRC_WORKLOAD_DAPPS_H_
#define SRC_WORKLOAD_DAPPS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/workload/trace.h"

namespace diablo {

struct Invocation {
  std::string function;
  std::vector<int64_t> args;
};

struct DappWorkload {
  std::string name;      // "exchange", "dota", "fifa", "uber", "youtube"
  std::string contract;  // contract registry key
  Trace trace;
  // When set, every transaction performs exactly this invocation
  // (workload-spec-driven runs).
  std::optional<Invocation> fixed;

  // The invocation the i-th transaction performs. Deterministic in i.
  Invocation InvocationFor(uint64_t i) const;
};

// The five default DIABLO DApps, Table 2 order: exchange/NASDAQ,
// dota/Dota 2, fifa/FIFA, uber/Uber, youtube/YouTube.
DappWorkload GetDappWorkload(std::string_view name);

const std::vector<std::string>& AllDappNames();

}  // namespace diablo

#endif  // SRC_WORKLOAD_DAPPS_H_
