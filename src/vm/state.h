// Contract storage: a word store plus opaque byte blobs (for payload-bearing
// writes such as the video-sharing DApp's upload data).
#ifndef SRC_VM_STATE_H_
#define SRC_VM_STATE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace diablo {

class ContractState {
 public:
  int64_t Load(uint64_t key) const;
  void Store(uint64_t key, int64_t value);

  // Records a blob of `bytes` at `key`; returns false (and stores nothing)
  // when `max_kv_bytes` > 0 and the entry would exceed it.
  bool StoreBytes(uint64_t key, int64_t bytes, int64_t max_kv_bytes);

  int64_t BlobSize(uint64_t key) const;
  size_t entry_count() const { return words_.size() + blobs_.size(); }
  int64_t total_blob_bytes() const { return total_blob_bytes_; }

 private:
  std::unordered_map<uint64_t, int64_t> words_;
  std::unordered_map<uint64_t, int64_t> blobs_;
  int64_t total_blob_bytes_ = 0;
};

}  // namespace diablo

#endif  // SRC_VM_STATE_H_
