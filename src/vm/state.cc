#include "src/vm/state.h"

namespace diablo {

int64_t ContractState::Load(uint64_t key) const {
  const auto it = words_.find(key);
  return it == words_.end() ? 0 : it->second;
}

void ContractState::Store(uint64_t key, int64_t value) { words_[key] = value; }

bool ContractState::StoreBytes(uint64_t key, int64_t bytes, int64_t max_kv_bytes) {
  if (max_kv_bytes > 0 && bytes > max_kv_bytes) {
    return false;
  }
  auto [it, inserted] = blobs_.try_emplace(key, 0);
  total_blob_bytes_ += bytes - it->second;
  it->second = bytes;
  return true;
}

int64_t ContractState::BlobSize(uint64_t key) const {
  const auto it = blobs_.find(key);
  return it == blobs_.end() ? 0 : it->second;
}

}  // namespace diablo
