#include "src/vm/dialect.h"

#include <array>

namespace diablo {
namespace {

constexpr std::array<DialectLimits, 4> kLimits = {{
    // geth: the paper's "no hard limit on gas budget of a transaction";
    // 21000 intrinsic gas as in the Ethereum yellow paper.
    {"geth", 0, 0, 0, 21000},
    // AVM: 700-opcode budget per application call, 128-byte kv entries.
    {"avm", 700, 0, 128, 500},
    // MoveVM: hard execution cap. Calibrated to sit far below the Uber
    // DApp's ~1M-gas executions while allowing ordinary DApp calls.
    {"movevm", 0, 150000, 0, 1500},
    // eBPF: Solana's 200k compute-unit budget per transaction.
    {"ebpf", 0, 200000, 0, 1000},
}};

}  // namespace

const DialectLimits& LimitsOf(VmDialect dialect) {
  return kLimits[static_cast<size_t>(dialect)];
}

std::string_view DialectName(VmDialect dialect) {
  return LimitsOf(dialect).name;
}

}  // namespace diablo
