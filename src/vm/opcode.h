// Instruction set of the gas-metered stack machine that stands in for the
// EVM / AVM / MoveVM / eBPF runtimes of the evaluated chains (§5.2).
//
// Encoding: one opcode byte, followed by an immediate whose width depends on
// the opcode — 8 bytes for kPush, 4 bytes for jump targets, 1 byte for
// kDup / kSwap / kArg / kEmit, none otherwise.
#ifndef SRC_VM_OPCODE_H_
#define SRC_VM_OPCODE_H_

#include <cstdint>
#include <string_view>

namespace diablo {

enum class Opcode : uint8_t {
  kStop = 0,     // halt, success
  kPush,         // push imm64
  kPop,          // drop top
  kDup,          // push stack[top - imm8]
  kSwap,         // swap top with stack[top - imm8]
  kAdd,
  kSub,
  kMul,
  kDiv,          // traps on divide by zero
  kMod,          // traps on modulo by zero
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,
  kNeq,
  kNot,          // logical: 0 -> 1, else -> 0
  kAnd,          // logical
  kOr,           // logical
  kShl,
  kShr,
  kJump,         // unconditional, imm32 target
  kJumpI,        // pops condition, jumps when non-zero
  kSload,        // pops key, pushes state[key] (0 when absent)
  kSstore,       // pops key, value; stores
  kSstoreBytes,  // pops key, byte count; stores an opaque blob of that size
  kCaller,       // pushes the caller account id
  kArg,          // pushes calldata[imm8]
  kArgCount,     // pushes the number of calldata words
  kEmit,         // pops imm8 values as an event
  kReturn,       // pops return value, halt, success
  kRevert,       // halt, state changes discarded
  kCall,         // imm32 target; pushes the return address on the call stack
  kRet,          // returns to the address atop the call stack
  kMload,        // pops address, pushes transient memory word (0 when unset)
  kMstore,       // pops address, value; writes transient memory
  kOpcodeCount,  // sentinel
};

// Mnemonic for the assembler / disassembler; empty view for invalid codes.
std::string_view OpcodeName(Opcode op);

// Parses a mnemonic; returns false when unknown.
bool ParseOpcode(std::string_view name, Opcode* out);

// Width in bytes of the immediate operand that follows the opcode byte.
int ImmediateWidth(Opcode op);

// Gas charged for one execution of the opcode (excluding per-byte charges of
// kSstoreBytes and per-value charges of kEmit, added by the interpreter).
int64_t OpcodeGas(Opcode op);

// Extra gas per stored byte for kSstoreBytes and per emitted value for kEmit.
inline constexpr int64_t kGasPerStoredByte = 16;
inline constexpr int64_t kGasPerEmittedValue = 256;

}  // namespace diablo

#endif  // SRC_VM_OPCODE_H_
