// A compiled contract: flat bytecode plus a table of exported function entry
// points. The host invokes a function directly by entry offset (the chains'
// client SDKs resolve the function name before submission, so no selector
// dispatch runs on-chain in the simulation).
#ifndef SRC_VM_PROGRAM_H_
#define SRC_VM_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace diablo {

struct FunctionEntry {
  std::string name;
  uint32_t offset = 0;
};

struct Program {
  std::string name;
  std::vector<uint8_t> code;
  std::vector<FunctionEntry> functions;

  // Entry offset of `function`, or -1 when not exported.
  int64_t EntryOf(std::string_view function) const {
    for (const FunctionEntry& f : functions) {
      if (f.name == function) {
        return f.offset;
      }
    }
    return -1;
  }
};

}  // namespace diablo

#endif  // SRC_VM_PROGRAM_H_
