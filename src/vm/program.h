// A compiled contract: flat bytecode plus a table of exported function entry
// points. The host invokes a function directly by entry offset (the chains'
// client SDKs resolve the function name before submission, so no selector
// dispatch runs on-chain in the simulation).
#ifndef SRC_VM_PROGRAM_H_
#define SRC_VM_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace diablo {

struct FunctionEntry {
  std::string name;
  uint32_t offset = 0;
};

// One pre-decoded instruction per *byte offset* of the code (plus an end
// sentinel), so any pc a jump can legally reach — including the middle of an
// immediate — has its decode ready: opcode, gas, operand value and fall-
// through target are resolved once at assembly time instead of per step.
struct DecodedInsn {
  enum Kind : uint8_t {
    kOp = 0,     // a valid instruction
    kEnd = 1,    // one past the last byte: clean stop, nothing charged
    kBadOp = 2,  // unknown opcode byte or truncated immediate
  };
  uint8_t op = 0;
  uint8_t kind = kBadOp;
  int32_t gas = 0;
  uint32_t next = 0;  // fall-through pc (pc + 1 + immediate width)
  int64_t imm = 0;
};

struct Program {
  std::string name;
  std::vector<uint8_t> code;
  std::vector<FunctionEntry> functions;
  // code.size() + 1 entries when predecoded (by the assembler); empty for
  // hand-built programs, which run through the byte-decoding interpreter.
  std::vector<DecodedInsn> decoded;

  // Builds `decoded` from `code`. Idempotent; called by the assembler.
  void Predecode();

  // Entry offset of `function`, or -1 when not exported.
  int64_t EntryOf(std::string_view function) const {
    for (const FunctionEntry& f : functions) {
      if (f.name == function) {
        return f.offset;
      }
    }
    return -1;
  }
};

}  // namespace diablo

#endif  // SRC_VM_PROGRAM_H_
