// Two-pass assembler for the VM.
//
// Source format, one statement per line:
//   ; comment (also after statements)
//   .func name        — exports the next instruction as entry point `name`
//   label:            — defines a jump label
//   push 42           — mnemonic plus optional immediate
//   jump label        — jump targets are labels
//
// The five DApps of §3 are written in this assembly (src/contracts/).
#ifndef SRC_VM_ASSEMBLER_H_
#define SRC_VM_ASSEMBLER_H_

#include <string>
#include <string_view>

#include "src/vm/program.h"

namespace diablo {

struct AssembleResult {
  bool ok = false;
  std::string error;  // "line N: message" when !ok
  Program program;
};

AssembleResult Assemble(std::string_view name, std::string_view source);

// Renders bytecode back to source-ish text (labels synthesized); used by
// tests and debugging.
std::string Disassemble(const Program& program);

}  // namespace diablo

#endif  // SRC_VM_ASSEMBLER_H_
