#include "src/vm/assembler.h"

#include <map>

#include "src/support/strings.h"
#include "src/vm/opcode.h"

namespace diablo {
namespace {

void AppendImmediate(std::vector<uint8_t>* code, int64_t value, int width) {
  for (int i = 0; i < width; ++i) {
    code->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

std::string_view StripComment(std::string_view line) {
  const size_t pos = line.find(';');
  return pos == std::string_view::npos ? line : line.substr(0, pos);
}

}  // namespace

AssembleResult Assemble(std::string_view name, std::string_view source) {
  AssembleResult result;
  result.program.name = std::string(name);

  struct Fixup {
    size_t code_offset;  // where the 4-byte target lives
    std::string label;
    int line;
  };
  std::map<std::string, uint32_t> labels;
  std::vector<Fixup> fixups;
  std::vector<uint8_t>& code = result.program.code;
  std::string pending_func;

  const std::vector<std::string> lines = Split(source, '\n');
  for (size_t line_no = 0; line_no < lines.size(); ++line_no) {
    const int line = static_cast<int>(line_no) + 1;
    auto fail = [&](const std::string& message) {
      result.error = StrFormat("line %d: %s", line, message.c_str());
      return result;
    };

    std::string_view text = TrimView(StripComment(lines[line_no]));
    if (text.empty()) {
      continue;
    }

    if (StartsWith(text, ".func")) {
      const std::vector<std::string> parts = SplitWhitespace(text);
      if (parts.size() != 2) {
        return fail(".func expects exactly one name");
      }
      pending_func = parts[1];
      continue;
    }

    if (EndsWith(text, ":")) {
      const std::string label = Trim(text.substr(0, text.size() - 1));
      if (label.empty() || SplitWhitespace(label).size() != 1) {
        return fail("malformed label");
      }
      if (labels.contains(label)) {
        return fail("duplicate label '" + label + "'");
      }
      labels[label] = static_cast<uint32_t>(code.size());
      continue;
    }

    const std::vector<std::string> parts = SplitWhitespace(text);
    Opcode op;
    if (!ParseOpcode(parts[0], &op)) {
      return fail("unknown mnemonic '" + parts[0] + "'");
    }
    if (!pending_func.empty()) {
      result.program.functions.push_back(
          FunctionEntry{pending_func, static_cast<uint32_t>(code.size())});
      // Exported functions double as call/jump targets.
      if (!labels.contains(pending_func)) {
        labels[pending_func] = static_cast<uint32_t>(code.size());
      }
      pending_func.clear();
    }
    code.push_back(static_cast<uint8_t>(op));

    const int width = ImmediateWidth(op);
    if (width == 0) {
      if (parts.size() != 1) {
        return fail("'" + parts[0] + "' takes no operand");
      }
      continue;
    }
    if (parts.size() != 2) {
      return fail("'" + parts[0] + "' requires one operand");
    }
    if (op == Opcode::kJump || op == Opcode::kJumpI || op == Opcode::kCall) {
      fixups.push_back(Fixup{code.size(), parts[1], line});
      AppendImmediate(&code, 0, width);
      continue;
    }
    int64_t value = 0;
    if (!ParseInt64(parts[1], &value)) {
      return fail("bad operand '" + parts[1] + "'");
    }
    if (width == 1 && (value < 0 || value > 255)) {
      return fail("operand out of byte range");
    }
    AppendImmediate(&code, value, width);
  }

  if (!pending_func.empty()) {
    result.error = ".func '" + pending_func + "' has no following instruction";
    return result;
  }

  for (const Fixup& fixup : fixups) {
    const auto it = labels.find(fixup.label);
    if (it == labels.end()) {
      result.error = StrFormat("line %d: undefined label '%s'", fixup.line,
                               fixup.label.c_str());
      return result;
    }
    const uint32_t target = it->second;
    for (int i = 0; i < 4; ++i) {
      code[fixup.code_offset + static_cast<size_t>(i)] =
          static_cast<uint8_t>(target >> (8 * i));
    }
  }

  result.program.Predecode();
  result.ok = true;
  return result;
}

std::string Disassemble(const Program& program) {
  std::string out;
  size_t pc = 0;
  while (pc < program.code.size()) {
    for (const FunctionEntry& f : program.functions) {
      if (f.offset == pc) {
        out += ".func " + f.name + "\n";
      }
    }
    const Opcode op = static_cast<Opcode>(program.code[pc]);
    out += StrFormat("%04zu  %s", pc, std::string(OpcodeName(op)).c_str());
    ++pc;
    const int width = ImmediateWidth(op);
    if (width > 0) {
      int64_t value = 0;
      for (int i = 0; i < width; ++i) {
        value |= static_cast<int64_t>(program.code[pc + static_cast<size_t>(i)]) << (8 * i);
      }
      if (width == 8) {
        out += StrFormat(" %lld", static_cast<long long>(value));
      } else {
        out += StrFormat(" %lld", static_cast<long long>(value & ((1LL << (8 * width)) - 1)));
      }
      pc += static_cast<size_t>(width);
    }
    out += "\n";
  }
  return out;
}

}  // namespace diablo
