#include "src/vm/program.h"

#include "src/vm/opcode.h"

namespace diablo {
namespace {

int64_t ReadImmediate(const std::vector<uint8_t>& code, size_t pc, int width) {
  int64_t value = 0;
  for (int i = 0; i < width; ++i) {
    value |= static_cast<int64_t>(code[pc + static_cast<size_t>(i)]) << (8 * i);
  }
  return value;
}

}  // namespace

void Program::Predecode() {
  decoded.assign(code.size() + 1, DecodedInsn{});
  for (size_t pc = 0; pc < code.size(); ++pc) {
    DecodedInsn& insn = decoded[pc];
    const uint8_t byte = code[pc];
    if (byte >= static_cast<uint8_t>(Opcode::kOpcodeCount)) {
      continue;  // stays kBadOp
    }
    const Opcode op = static_cast<Opcode>(byte);
    const int width = ImmediateWidth(op);
    if (pc + 1 + static_cast<size_t>(width) > code.size()) {
      continue;  // truncated immediate: stays kBadOp
    }
    insn.op = byte;
    insn.kind = DecodedInsn::kOp;
    insn.gas = static_cast<int32_t>(OpcodeGas(op));
    insn.next = static_cast<uint32_t>(pc + 1 + static_cast<size_t>(width));
    insn.imm = width > 0 ? ReadImmediate(code, pc + 1, width) : 0;
  }
  // One past the end: falling (or jumping) off the code is a clean stop that
  // charges no gas and counts no op.
  decoded[code.size()].kind = DecodedInsn::kEnd;
}

}  // namespace diablo
