#include "src/vm/opcode.h"

#include <array>

namespace diablo {
namespace {

struct OpcodeInfo {
  std::string_view name;
  int imm_width;
  int64_t gas;
};

// Pure-compute opcodes are cheap (1-2 gas, like post-Berlin EVM arithmetic);
// storage dominates contract costs just as on real chains.
constexpr std::array<OpcodeInfo, static_cast<size_t>(Opcode::kOpcodeCount)> kInfo = {{
    {"stop", 0, 0},
    {"push", 8, 1},
    {"pop", 0, 1},
    {"dup", 1, 1},
    {"swap", 1, 1},
    {"add", 0, 1},
    {"sub", 0, 1},
    {"mul", 0, 2},
    {"div", 0, 2},
    {"mod", 0, 2},
    {"lt", 0, 1},
    {"gt", 0, 1},
    {"le", 0, 1},
    {"ge", 0, 1},
    {"eq", 0, 1},
    {"neq", 0, 1},
    {"not", 0, 1},
    {"and", 0, 1},
    {"or", 0, 1},
    {"shl", 0, 1},
    {"shr", 0, 1},
    {"jump", 4, 2},
    {"jumpi", 4, 2},
    {"sload", 0, 200},
    {"sstore", 0, 2000},
    {"sstoreb", 0, 2000},
    {"caller", 0, 1},
    {"arg", 1, 1},
    {"argcount", 0, 1},
    {"emit", 1, 375},
    {"return", 0, 0},
    {"revert", 0, 0},
    {"call", 4, 2},
    {"ret", 0, 2},
    {"mload", 0, 3},
    {"mstore", 0, 3},
}};

}  // namespace

std::string_view OpcodeName(Opcode op) {
  const size_t i = static_cast<size_t>(op);
  return i < kInfo.size() ? kInfo[i].name : std::string_view();
}

bool ParseOpcode(std::string_view name, Opcode* out) {
  for (size_t i = 0; i < kInfo.size(); ++i) {
    if (kInfo[i].name == name) {
      *out = static_cast<Opcode>(i);
      return true;
    }
  }
  return false;
}

int ImmediateWidth(Opcode op) {
  const size_t i = static_cast<size_t>(op);
  return i < kInfo.size() ? kInfo[i].imm_width : 0;
}

int64_t OpcodeGas(Opcode op) {
  const size_t i = static_cast<size_t>(op);
  return i < kInfo.size() ? kInfo[i].gas : 0;
}

}  // namespace diablo
