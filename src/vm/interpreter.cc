#include "src/vm/interpreter.h"

#include <algorithm>
#include <vector>

#include "src/support/profile.h"
#include "src/vm/opcode.h"

namespace diablo {
namespace {

constexpr size_t kMaxStackDepth = 1024;
constexpr size_t kMaxCallDepth = 64;
constexpr size_t kMaxMemoryWords = 4096;
// Absolute safety net against non-terminating programs on unlimited-budget
// dialects; far above any legitimate contract in this suite.
constexpr int64_t kMaxOps = 100'000'000;

int64_t ReadImmediate(const std::vector<uint8_t>& code, size_t pc, int width) {
  int64_t value = 0;
  for (int i = 0; i < width; ++i) {
    value |= static_cast<int64_t>(code[pc + static_cast<size_t>(i)]) << (8 * i);
  }
  if (width == 8) {
    return value;  // full word, already sign-complete
  }
  return value;  // unsigned small immediates
}

struct WordWrite {
  uint64_t key;
  int64_t value;
};

struct BlobWrite {
  uint64_t key;
  int64_t bytes;
};

}  // namespace

std::string_view VmStatusName(VmStatus status) {
  switch (status) {
    case VmStatus::kOk:
      return "ok";
    case VmStatus::kReverted:
      return "reverted";
    case VmStatus::kOutOfGas:
      return "out of gas";
    case VmStatus::kBudgetExceeded:
      return "budget exceeded";
    case VmStatus::kStateLimitExceeded:
      return "state limit exceeded";
    case VmStatus::kStackUnderflow:
      return "stack underflow";
    case VmStatus::kStackOverflow:
      return "stack overflow";
    case VmStatus::kInvalidJump:
      return "invalid jump";
    case VmStatus::kInvalidOpcode:
      return "invalid opcode";
    case VmStatus::kDivisionByZero:
      return "division by zero";
    case VmStatus::kNoSuchFunction:
      return "no such function";
  }
  return "?";
}

namespace {

// Reference interpreter: decodes each instruction from the raw byte stream as
// it executes. Runs hand-built programs (no `decoded` table) and serves as the
// semantic oracle the decoded path is tested against.
ExecResult ExecuteBytes(const ExecRequest& request) {
  const DialectLimits& limits = LimitsOf(request.dialect);
  ExecResult result;
  result.gas_used = limits.intrinsic_gas;

  const int64_t entry =
      request.entry >= 0 ? request.entry : request.program->EntryOf(request.function);
  if (entry < 0) {
    result.status = VmStatus::kNoSuchFunction;
    return result;
  }

  const std::vector<uint8_t>& code = request.program->code;
  std::vector<int64_t> stack;
  stack.reserve(64);
  std::vector<size_t> call_stack;
  std::vector<int64_t> memory;  // transient per-call scratch, lazily grown
  std::vector<WordWrite> word_journal;
  std::vector<BlobWrite> blob_journal;
  // Reads must observe earlier writes of the same call; the journal is
  // scanned backwards (it is short for every contract in this suite).
  auto journaled_load = [&](uint64_t key) -> int64_t {
    for (auto it = word_journal.rbegin(); it != word_journal.rend(); ++it) {
      if (it->key == key) {
        return it->value;
      }
    }
    return request.state != nullptr ? request.state->Load(key) : 0;
  };

  auto fail = [&](VmStatus status) {
    result.status = status;
    return result;
  };

  size_t pc = static_cast<size_t>(entry);
  while (true) {
    if (pc >= code.size()) {
      // Falling off the end is a clean stop.
      break;
    }
    const Opcode op = static_cast<Opcode>(code[pc]);
    if (static_cast<uint8_t>(op) >= static_cast<uint8_t>(Opcode::kOpcodeCount)) {
      return fail(VmStatus::kInvalidOpcode);
    }
    const int width = ImmediateWidth(op);
    if (pc + 1 + static_cast<size_t>(width) > code.size() + (width == 0 ? 1 : 0)) {
      if (pc + 1 + static_cast<size_t>(width) > code.size()) {
        return fail(VmStatus::kInvalidOpcode);
      }
    }

    ++result.ops_executed;
    result.gas_used += OpcodeGas(op);
    if (limits.op_budget > 0 && result.ops_executed > limits.op_budget) {
      return fail(VmStatus::kBudgetExceeded);
    }
    if (limits.gas_budget > 0 && result.gas_used > limits.gas_budget) {
      return fail(VmStatus::kBudgetExceeded);
    }
    if (request.gas_limit > 0 && result.gas_used > request.gas_limit) {
      return fail(VmStatus::kOutOfGas);
    }
    if (result.ops_executed > kMaxOps) {
      return fail(VmStatus::kBudgetExceeded);
    }

    const int64_t imm = width > 0 ? ReadImmediate(code, pc + 1, width) : 0;
    size_t next_pc = pc + 1 + static_cast<size_t>(width);

    auto need = [&](size_t n) { return stack.size() >= n; };
    auto binary_op = [&](auto fn) -> bool {
      if (!need(2)) {
        return false;
      }
      const int64_t rhs = stack.back();
      stack.pop_back();
      stack.back() = fn(stack.back(), rhs);
      return true;
    };

    switch (op) {
      case Opcode::kStop:
        goto done;
      case Opcode::kPush:
        if (stack.size() >= kMaxStackDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        stack.push_back(imm);
        break;
      case Opcode::kPop:
        if (!need(1)) {
          return fail(VmStatus::kStackUnderflow);
        }
        stack.pop_back();
        break;
      case Opcode::kDup: {
        const size_t depth = static_cast<size_t>(imm);
        if (!need(depth + 1)) {
          return fail(VmStatus::kStackUnderflow);
        }
        if (stack.size() >= kMaxStackDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        stack.push_back(stack[stack.size() - 1 - depth]);
        break;
      }
      case Opcode::kSwap: {
        const size_t depth = static_cast<size_t>(imm);
        if (depth == 0 || !need(depth + 1)) {
          return fail(VmStatus::kStackUnderflow);
        }
        std::swap(stack.back(), stack[stack.size() - 1 - depth]);
        break;
      }
      case Opcode::kAdd:
        if (!binary_op([](int64_t a, int64_t b) { return a + b; })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kSub:
        if (!binary_op([](int64_t a, int64_t b) { return a - b; })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kMul:
        if (!binary_op([](int64_t a, int64_t b) { return a * b; })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kDiv:
        if (!need(2)) {
          return fail(VmStatus::kStackUnderflow);
        }
        if (stack.back() == 0) {
          return fail(VmStatus::kDivisionByZero);
        }
        binary_op([](int64_t a, int64_t b) { return a / b; });
        break;
      case Opcode::kMod:
        if (!need(2)) {
          return fail(VmStatus::kStackUnderflow);
        }
        if (stack.back() == 0) {
          return fail(VmStatus::kDivisionByZero);
        }
        binary_op([](int64_t a, int64_t b) { return a % b; });
        break;
      case Opcode::kLt:
        if (!binary_op([](int64_t a, int64_t b) { return static_cast<int64_t>(a < b); })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kGt:
        if (!binary_op([](int64_t a, int64_t b) { return static_cast<int64_t>(a > b); })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kLe:
        if (!binary_op([](int64_t a, int64_t b) { return static_cast<int64_t>(a <= b); })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kGe:
        if (!binary_op([](int64_t a, int64_t b) { return static_cast<int64_t>(a >= b); })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kEq:
        if (!binary_op([](int64_t a, int64_t b) { return static_cast<int64_t>(a == b); })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kNeq:
        if (!binary_op([](int64_t a, int64_t b) { return static_cast<int64_t>(a != b); })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kNot:
        if (!need(1)) {
          return fail(VmStatus::kStackUnderflow);
        }
        stack.back() = stack.back() == 0 ? 1 : 0;
        break;
      case Opcode::kAnd:
        if (!binary_op([](int64_t a, int64_t b) {
              return static_cast<int64_t>(a != 0 && b != 0);
            })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kOr:
        if (!binary_op([](int64_t a, int64_t b) {
              return static_cast<int64_t>(a != 0 || b != 0);
            })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kShl:
        if (!binary_op([](int64_t a, int64_t b) {
              return b < 0 || b > 63 ? 0 : static_cast<int64_t>(static_cast<uint64_t>(a) << b);
            })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kShr:
        if (!binary_op([](int64_t a, int64_t b) {
              return b < 0 || b > 63 ? 0 : static_cast<int64_t>(static_cast<uint64_t>(a) >> b);
            })) {
          return fail(VmStatus::kStackUnderflow);
        }
        break;
      case Opcode::kJump:
        if (static_cast<size_t>(imm) > code.size()) {
          return fail(VmStatus::kInvalidJump);
        }
        next_pc = static_cast<size_t>(imm);
        break;
      case Opcode::kJumpI: {
        if (!need(1)) {
          return fail(VmStatus::kStackUnderflow);
        }
        const int64_t condition = stack.back();
        stack.pop_back();
        if (condition != 0) {
          if (static_cast<size_t>(imm) > code.size()) {
            return fail(VmStatus::kInvalidJump);
          }
          next_pc = static_cast<size_t>(imm);
        }
        break;
      }
      case Opcode::kSload: {
        if (!need(1)) {
          return fail(VmStatus::kStackUnderflow);
        }
        const uint64_t key = static_cast<uint64_t>(stack.back());
        stack.back() = journaled_load(key);
        break;
      }
      case Opcode::kSstore: {
        if (!need(2)) {
          return fail(VmStatus::kStackUnderflow);
        }
        const int64_t value = stack.back();
        stack.pop_back();
        const uint64_t key = static_cast<uint64_t>(stack.back());
        stack.pop_back();
        word_journal.push_back(WordWrite{key, value});
        break;
      }
      case Opcode::kSstoreBytes: {
        if (!need(2)) {
          return fail(VmStatus::kStackUnderflow);
        }
        const int64_t bytes = stack.back();
        stack.pop_back();
        const uint64_t key = static_cast<uint64_t>(stack.back());
        stack.pop_back();
        if (limits.max_kv_bytes > 0 && bytes > limits.max_kv_bytes) {
          return fail(VmStatus::kStateLimitExceeded);
        }
        result.gas_used += kGasPerStoredByte * (bytes < 0 ? 0 : bytes);
        if (limits.gas_budget > 0 && result.gas_used > limits.gas_budget) {
          return fail(VmStatus::kBudgetExceeded);
        }
        if (request.gas_limit > 0 && result.gas_used > request.gas_limit) {
          return fail(VmStatus::kOutOfGas);
        }
        blob_journal.push_back(BlobWrite{key, bytes});
        break;
      }
      case Opcode::kCaller:
        if (stack.size() >= kMaxStackDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        stack.push_back(static_cast<int64_t>(request.caller));
        break;
      case Opcode::kArg: {
        const size_t index = static_cast<size_t>(imm);
        if (stack.size() >= kMaxStackDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        stack.push_back(index < request.args.size() ? request.args[index] : 0);
        break;
      }
      case Opcode::kArgCount:
        if (stack.size() >= kMaxStackDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        stack.push_back(static_cast<int64_t>(request.args.size()));
        break;
      case Opcode::kEmit: {
        const size_t values = static_cast<size_t>(imm);
        if (!need(values)) {
          return fail(VmStatus::kStackUnderflow);
        }
        stack.resize(stack.size() - values);
        result.gas_used += kGasPerEmittedValue * static_cast<int64_t>(values);
        ++result.events_emitted;
        break;
      }
      case Opcode::kReturn:
        if (!need(1)) {
          return fail(VmStatus::kStackUnderflow);
        }
        result.return_value = stack.back();
        goto done;
      case Opcode::kRevert:
        return fail(VmStatus::kReverted);
      case Opcode::kCall:
        if (static_cast<size_t>(imm) > code.size()) {
          return fail(VmStatus::kInvalidJump);
        }
        if (call_stack.size() >= kMaxCallDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        call_stack.push_back(next_pc);
        next_pc = static_cast<size_t>(imm);
        break;
      case Opcode::kRet:
        if (call_stack.empty()) {
          return fail(VmStatus::kStackUnderflow);
        }
        next_pc = call_stack.back();
        call_stack.pop_back();
        break;
      case Opcode::kMload: {
        if (!need(1)) {
          return fail(VmStatus::kStackUnderflow);
        }
        const uint64_t address = static_cast<uint64_t>(stack.back());
        if (address >= kMaxMemoryWords) {
          return fail(VmStatus::kInvalidJump);
        }
        stack.back() = address < memory.size() ? memory[address] : 0;
        break;
      }
      case Opcode::kMstore: {
        if (!need(2)) {
          return fail(VmStatus::kStackUnderflow);
        }
        const int64_t value = stack.back();
        stack.pop_back();
        const uint64_t address = static_cast<uint64_t>(stack.back());
        stack.pop_back();
        if (address >= kMaxMemoryWords) {
          return fail(VmStatus::kInvalidJump);
        }
        if (address >= memory.size()) {
          memory.resize(address + 1, 0);
        }
        memory[address] = value;
        break;
      }
      case Opcode::kOpcodeCount:
        return fail(VmStatus::kInvalidOpcode);
    }
    pc = next_pc;
  }

done:
  if (request.state != nullptr) {
    for (const WordWrite& write : word_journal) {
      request.state->Store(write.key, write.value);
    }
    for (const BlobWrite& write : blob_journal) {
      request.state->StoreBytes(write.key, write.bytes, limits.max_kv_bytes);
    }
  }
  return result;
}

// Fast path over the assembler's pre-decoded instruction stream: opcode, gas
// cost, operand and fall-through pc come straight from the DecodedInsn table,
// the operand stack is a flat array, and the per-call scratch (memory and
// write journals) is thread-local so steady-state calls allocate nothing.
// Must stay observably identical to ExecuteBytes — including failure statuses,
// gas/op accounting on every early exit, and the decode-before-charge rule
// (kBadOp and kEnd charge nothing).
ExecResult ExecuteDecoded(const ExecRequest& request) {
  const DialectLimits& limits = LimitsOf(request.dialect);
  ExecResult result;
  result.gas_used = limits.intrinsic_gas;

  const int64_t entry =
      request.entry >= 0 ? request.entry : request.program->EntryOf(request.function);
  if (entry < 0) {
    result.status = VmStatus::kNoSuchFunction;
    return result;
  }

  const std::vector<uint8_t>& code = request.program->code;
  const DecodedInsn* const decoded = request.program->decoded.data();
  const size_t code_size = code.size();

  // Budget caps hoisted out of the loop: a disabled limit becomes an
  // unreachable sentinel, so the loop body is four predictable compares. The
  // check ORDER matches ExecuteBytes exactly (op budget, then gas budget,
  // then gas limit, then the absolute op ceiling).
  const int64_t op_budget =
      limits.op_budget > 0 ? limits.op_budget : INT64_MAX;
  const int64_t gas_budget =
      limits.gas_budget > 0 ? limits.gas_budget : INT64_MAX;
  const int64_t gas_limit =
      request.gas_limit > 0 ? request.gas_limit : INT64_MAX;

  int64_t stack[kMaxStackDepth];
  size_t sp = 0;
  uint32_t call_stack[kMaxCallDepth];
  size_t csp = 0;

  thread_local std::vector<int64_t> memory;
  thread_local std::vector<WordWrite> word_journal;
  thread_local std::vector<BlobWrite> blob_journal;
  memory.clear();
  word_journal.clear();
  blob_journal.clear();

  auto journaled_load = [&](uint64_t key) -> int64_t {
    for (auto it = word_journal.rbegin(); it != word_journal.rend(); ++it) {
      if (it->key == key) {
        return it->value;
      }
    }
    return request.state != nullptr ? request.state->Load(key) : 0;
  };

  auto fail = [&](VmStatus status) {
    result.status = status;
    return result;
  };

  size_t pc = static_cast<size_t>(entry);
  if (pc >= code_size) {
    // Entry at or past the end: clean stop, same as the byte path's loop
    // guard (also keeps `decoded[pc]` in bounds for malformed entries).
    goto done;
  }

  while (true) {
    const DecodedInsn& insn = decoded[pc];
    if (insn.kind != DecodedInsn::kOp) {
      if (insn.kind == DecodedInsn::kEnd) {
        break;  // ran off the end: clean stop, nothing charged
      }
      return fail(VmStatus::kInvalidOpcode);  // kBadOp: charged nothing
    }

    ++result.ops_executed;
    result.gas_used += insn.gas;
    if (result.ops_executed > op_budget) {
      return fail(VmStatus::kBudgetExceeded);
    }
    if (result.gas_used > gas_budget) {
      return fail(VmStatus::kBudgetExceeded);
    }
    if (result.gas_used > gas_limit) {
      return fail(VmStatus::kOutOfGas);
    }
    if (result.ops_executed > kMaxOps) {
      return fail(VmStatus::kBudgetExceeded);
    }

    const int64_t imm = insn.imm;
    size_t next_pc = insn.next;

    switch (static_cast<Opcode>(insn.op)) {
      case Opcode::kStop:
        goto done;
      case Opcode::kPush:
        if (sp >= kMaxStackDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        stack[sp++] = imm;
        break;
      case Opcode::kPop:
        if (sp < 1) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        break;
      case Opcode::kDup: {
        const size_t depth = static_cast<size_t>(imm);
        if (sp < depth + 1) {
          return fail(VmStatus::kStackUnderflow);
        }
        if (sp >= kMaxStackDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        stack[sp] = stack[sp - 1 - depth];
        ++sp;
        break;
      }
      case Opcode::kSwap: {
        const size_t depth = static_cast<size_t>(imm);
        if (depth == 0 || sp < depth + 1) {
          return fail(VmStatus::kStackUnderflow);
        }
        std::swap(stack[sp - 1], stack[sp - 1 - depth]);
        break;
      }
      case Opcode::kAdd:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] += stack[sp];
        break;
      case Opcode::kSub:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] -= stack[sp];
        break;
      case Opcode::kMul:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] *= stack[sp];
        break;
      case Opcode::kDiv:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        if (stack[sp - 1] == 0) {
          return fail(VmStatus::kDivisionByZero);
        }
        --sp;
        stack[sp - 1] /= stack[sp];
        break;
      case Opcode::kMod:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        if (stack[sp - 1] == 0) {
          return fail(VmStatus::kDivisionByZero);
        }
        --sp;
        stack[sp - 1] %= stack[sp];
        break;
      case Opcode::kLt:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] = static_cast<int64_t>(stack[sp - 1] < stack[sp]);
        break;
      case Opcode::kGt:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] = static_cast<int64_t>(stack[sp - 1] > stack[sp]);
        break;
      case Opcode::kLe:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] = static_cast<int64_t>(stack[sp - 1] <= stack[sp]);
        break;
      case Opcode::kGe:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] = static_cast<int64_t>(stack[sp - 1] >= stack[sp]);
        break;
      case Opcode::kEq:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] = static_cast<int64_t>(stack[sp - 1] == stack[sp]);
        break;
      case Opcode::kNeq:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] = static_cast<int64_t>(stack[sp - 1] != stack[sp]);
        break;
      case Opcode::kNot:
        if (sp < 1) {
          return fail(VmStatus::kStackUnderflow);
        }
        stack[sp - 1] = stack[sp - 1] == 0 ? 1 : 0;
        break;
      case Opcode::kAnd:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] = static_cast<int64_t>(stack[sp - 1] != 0 && stack[sp] != 0);
        break;
      case Opcode::kOr:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] = static_cast<int64_t>(stack[sp - 1] != 0 || stack[sp] != 0);
        break;
      case Opcode::kShl:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] =
            stack[sp] < 0 || stack[sp] > 63
                ? 0
                : static_cast<int64_t>(static_cast<uint64_t>(stack[sp - 1]) << stack[sp]);
        break;
      case Opcode::kShr:
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        --sp;
        stack[sp - 1] =
            stack[sp] < 0 || stack[sp] > 63
                ? 0
                : static_cast<int64_t>(static_cast<uint64_t>(stack[sp - 1]) >> stack[sp]);
        break;
      case Opcode::kJump:
        if (static_cast<size_t>(imm) > code_size) {
          return fail(VmStatus::kInvalidJump);
        }
        next_pc = static_cast<size_t>(imm);
        break;
      case Opcode::kJumpI: {
        if (sp < 1) {
          return fail(VmStatus::kStackUnderflow);
        }
        const int64_t condition = stack[--sp];
        if (condition != 0) {
          if (static_cast<size_t>(imm) > code_size) {
            return fail(VmStatus::kInvalidJump);
          }
          next_pc = static_cast<size_t>(imm);
        }
        break;
      }
      case Opcode::kSload: {
        if (sp < 1) {
          return fail(VmStatus::kStackUnderflow);
        }
        stack[sp - 1] = journaled_load(static_cast<uint64_t>(stack[sp - 1]));
        break;
      }
      case Opcode::kSstore: {
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        const int64_t value = stack[--sp];
        const uint64_t key = static_cast<uint64_t>(stack[--sp]);
        word_journal.push_back(WordWrite{key, value});
        break;
      }
      case Opcode::kSstoreBytes: {
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        const int64_t bytes = stack[--sp];
        const uint64_t key = static_cast<uint64_t>(stack[--sp]);
        if (limits.max_kv_bytes > 0 && bytes > limits.max_kv_bytes) {
          return fail(VmStatus::kStateLimitExceeded);
        }
        result.gas_used += kGasPerStoredByte * (bytes < 0 ? 0 : bytes);
        if (result.gas_used > gas_budget) {
          return fail(VmStatus::kBudgetExceeded);
        }
        if (result.gas_used > gas_limit) {
          return fail(VmStatus::kOutOfGas);
        }
        blob_journal.push_back(BlobWrite{key, bytes});
        break;
      }
      case Opcode::kCaller:
        if (sp >= kMaxStackDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        stack[sp++] = static_cast<int64_t>(request.caller);
        break;
      case Opcode::kArg: {
        const size_t index = static_cast<size_t>(imm);
        if (sp >= kMaxStackDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        stack[sp++] = index < request.args.size() ? request.args[index] : 0;
        break;
      }
      case Opcode::kArgCount:
        if (sp >= kMaxStackDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        stack[sp++] = static_cast<int64_t>(request.args.size());
        break;
      case Opcode::kEmit: {
        const size_t values = static_cast<size_t>(imm);
        if (sp < values) {
          return fail(VmStatus::kStackUnderflow);
        }
        sp -= values;
        result.gas_used += kGasPerEmittedValue * static_cast<int64_t>(values);
        ++result.events_emitted;
        break;
      }
      case Opcode::kReturn:
        if (sp < 1) {
          return fail(VmStatus::kStackUnderflow);
        }
        result.return_value = stack[sp - 1];
        goto done;
      case Opcode::kRevert:
        return fail(VmStatus::kReverted);
      case Opcode::kCall:
        if (static_cast<size_t>(imm) > code_size) {
          return fail(VmStatus::kInvalidJump);
        }
        if (csp >= kMaxCallDepth) {
          return fail(VmStatus::kStackOverflow);
        }
        call_stack[csp++] = insn.next;
        next_pc = static_cast<size_t>(imm);
        break;
      case Opcode::kRet:
        if (csp == 0) {
          return fail(VmStatus::kStackUnderflow);
        }
        next_pc = call_stack[--csp];
        break;
      case Opcode::kMload: {
        if (sp < 1) {
          return fail(VmStatus::kStackUnderflow);
        }
        const uint64_t address = static_cast<uint64_t>(stack[sp - 1]);
        if (address >= kMaxMemoryWords) {
          return fail(VmStatus::kInvalidJump);
        }
        stack[sp - 1] = address < memory.size() ? memory[address] : 0;
        break;
      }
      case Opcode::kMstore: {
        if (sp < 2) {
          return fail(VmStatus::kStackUnderflow);
        }
        const int64_t value = stack[--sp];
        const uint64_t address = static_cast<uint64_t>(stack[--sp]);
        if (address >= kMaxMemoryWords) {
          return fail(VmStatus::kInvalidJump);
        }
        if (address >= memory.size()) {
          memory.resize(address + 1, 0);
        }
        memory[address] = value;
        break;
      }
      case Opcode::kOpcodeCount:
        return fail(VmStatus::kInvalidOpcode);
    }
    pc = next_pc;
  }

done:
  if (request.state != nullptr) {
    for (const WordWrite& write : word_journal) {
      request.state->Store(write.key, write.value);
    }
    for (const BlobWrite& write : blob_journal) {
      request.state->StoreBytes(write.key, write.bytes, limits.max_kv_bytes);
    }
  }
  return result;
}

}  // namespace

ExecResult Execute(const ExecRequest& request) {
  // Assembled programs carry a pre-decoded table (one entry per byte offset
  // plus the end sentinel); hand-built programs fall back to byte decoding.
  const bool predecoded =
      request.program->decoded.size() == request.program->code.size() + 1;
  ExecResult result = predecoded ? ExecuteDecoded(request) : ExecuteBytes(request);
  profile::AddVmOps(static_cast<uint64_t>(result.ops_executed));
  return result;
}

}  // namespace diablo
