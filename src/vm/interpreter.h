// Bytecode interpreter with gas metering and dialect budget enforcement.
//
// State writes are journaled and applied only on success, so reverts and
// budget failures leave storage untouched (transaction semantics).
#ifndef SRC_VM_INTERPRETER_H_
#define SRC_VM_INTERPRETER_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "src/vm/dialect.h"
#include "src/vm/program.h"
#include "src/vm/state.h"

namespace diablo {

enum class VmStatus : uint8_t {
  kOk = 0,
  kReverted,            // contract-initiated revert
  kOutOfGas,            // exhausted the caller-supplied gas limit
  kBudgetExceeded,      // dialect hard cap hit — the paper's "budget exceeded"
  kStateLimitExceeded,  // key-value entry over the dialect's size limit
  kStackUnderflow,
  kStackOverflow,
  kInvalidJump,
  kInvalidOpcode,
  kDivisionByZero,
  kNoSuchFunction,
};

std::string_view VmStatusName(VmStatus status);

// Statuses that terminate the call but still consume the gas spent so far.
constexpr bool IsFailure(VmStatus status) { return status != VmStatus::kOk; }

struct ExecResult {
  VmStatus status = VmStatus::kOk;
  int64_t gas_used = 0;    // includes intrinsic gas
  int64_t ops_executed = 0;
  int64_t return_value = 0;
  int events_emitted = 0;
};

struct ExecRequest {
  const Program* program = nullptr;
  std::string_view function;
  // Pre-resolved entry offset of `function` (see Program::EntryOf). Callers
  // that dispatch repeatedly — the cost oracle — resolve the offset once and
  // set it here; when negative, Execute resolves by name (the convenient
  // form for tests and one-shot calls).
  int64_t entry = -1;
  std::span<const int64_t> args;
  uint64_t caller = 0;
  ContractState* state = nullptr;  // may be null for pure calls
  VmDialect dialect = VmDialect::kGeth;
  // Caller-supplied gas limit (e.g. remaining block gas); 0 = unlimited.
  int64_t gas_limit = 0;
};

ExecResult Execute(const ExecRequest& request);

}  // namespace diablo

#endif  // SRC_VM_INTERPRETER_H_
