// VM dialects. The four runtimes of Table 4 share this repository's single
// bytecode ISA but differ exactly where the paper says they differ (§5.2,
// §6.4): hard per-transaction compute budgets and state-entry size limits.
#ifndef SRC_VM_DIALECT_H_
#define SRC_VM_DIALECT_H_

#include <cstdint>
#include <string_view>

namespace diablo {

enum class VmDialect : uint8_t {
  kGeth = 0,  // Ethereum, Quorum, Avalanche C-Chain — no hard per-tx cap
  kAvm,       // Algorand: 700-op budget, 128-byte key-value state entries
  kMoveVm,    // Diem: hard max-gas execution limit
  kEbpf,      // Solana: 200k compute-unit budget
};

struct DialectLimits {
  std::string_view name;
  // Hard cap on executed instructions per transaction; 0 = unlimited.
  int64_t op_budget;
  // Hard cap on gas per transaction regardless of the fee paid; 0 = none.
  // §6.4: "This execution limit is hard-coded and cannot be lifted by paying
  // a higher gas fee."
  int64_t gas_budget;
  // Maximum bytes per key-value state entry; 0 = unlimited. §5.2: Algorand
  // state "is limited by a key-value store with 128 bytes per key-value
  // pair", which is why the video-sharing DApp has no TEAL version.
  int64_t max_kv_bytes;
  // Fixed gas charged per transaction before the first instruction.
  int64_t intrinsic_gas;
};

const DialectLimits& LimitsOf(VmDialect dialect);

std::string_view DialectName(VmDialect dialect);

}  // namespace diablo

#endif  // SRC_VM_DIALECT_H_
