// Inter-region round-trip times and bandwidths, transcribed from Table 3 of
// the paper (measured there with iperf3 between devnet machines). Intra-
// region links model the paper's datacenter numbers: 1 ms RTT, 10 Gbps.
#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include "src/net/region.h"
#include "src/support/time.h"

namespace diablo {

// Precomputed per-region-pair link parameters. DelaySample and the gossip
// broadcast are the simulator's hottest network paths; resolving a link
// through this flat table is one multiply-free index computation instead of
// two triangle lookups, a division and two unit conversions per message.
struct LinkParams {
  SimDuration propagation = 0;  // one-way, nanoseconds
  double bandwidth_bps = 0;     // bits per second
};

class Topology {
 public:
  // Round-trip time between two regions in milliseconds.
  static double RttMs(Region a, Region b);

  // Available bandwidth between two regions in Mbps.
  static double BandwidthMbps(Region a, Region b);

  // One-way propagation delay (RTT / 2).
  static SimDuration PropagationDelay(Region a, Region b);

  // Time to push `bytes` through the (a, b) link.
  static SimDuration TransmissionDelay(Region a, Region b, int64_t bytes);

  // Flat-table lookup of the (a, b) link, symmetric in its arguments.
  static const LinkParams& Link(Region a, Region b) {
    return LinkTable()[static_cast<size_t>(a) * kRegionCount +
                       static_cast<size_t>(b)];
  }

  // Transmission delay computed from cached LinkParams; bit-identical to
  // TransmissionDelay (same operations on the same doubles).
  static SimDuration TransmissionDelayOn(const LinkParams& link, int64_t bytes) {
    return static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 /
                                    link.bandwidth_bps *
                                    static_cast<double>(kSecond));
  }

 private:
  static const LinkParams* LinkTable();
};

}  // namespace diablo

#endif  // SRC_NET_TOPOLOGY_H_
