// Inter-region round-trip times and bandwidths, transcribed from Table 3 of
// the paper (measured there with iperf3 between devnet machines). Intra-
// region links model the paper's datacenter numbers: 1 ms RTT, 10 Gbps.
#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include "src/net/region.h"
#include "src/support/time.h"

namespace diablo {

class Topology {
 public:
  // Round-trip time between two regions in milliseconds.
  static double RttMs(Region a, Region b);

  // Available bandwidth between two regions in Mbps.
  static double BandwidthMbps(Region a, Region b);

  // One-way propagation delay (RTT / 2).
  static SimDuration PropagationDelay(Region a, Region b);

  // Time to push `bytes` through the (a, b) link.
  static SimDuration TransmissionDelay(Region a, Region b, int64_t bytes);
};

}  // namespace diablo

#endif  // SRC_NET_TOPOLOGY_H_
