#include "src/net/topology.h"

#include <array>

namespace diablo {
namespace {

// Table 3 (right), bottom-left triangle: round-trip time in milliseconds.
// Row = first region, column = second region, in enum order. Only i > j
// entries are meaningful; the matrix is symmetric.
constexpr std::array<std::array<double, kRegionCount>, kRegionCount> kRttMs = {{
    //  CT     Tok    Mum    Syd    Sto    Mil    Bah    SP     Ohi    Ore
    {{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},                                          // Cape Town
    {{354.0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},                                      // Tokyo
    {{272.0, 127.2, 0, 0, 0, 0, 0, 0, 0, 0}},                                  // Mumbai
    {{410.4, 102.3, 146.8, 0, 0, 0, 0, 0, 0, 0}},                              // Sydney
    {{179.7, 241.2, 138.9, 295.7, 0, 0, 0, 0, 0, 0}},                          // Stockholm
    {{162.4, 214.8, 110.8, 238.8, 30.2, 0, 0, 0, 0, 0}},                       // Milan
    {{287.0, 164.3, 36.4, 179.2, 137.9, 108.2, 0, 0, 0, 0}},                   // Bahrain
    {{340.5, 256.6, 305.6, 310.5, 214.9, 211.9, 320.0, 0, 0, 0}},              // Sao Paulo
    {{237.0, 131.8, 197.3, 187.9, 120.0, 109.2, 212.7, 121.9, 0, 0}},          // Ohio
    {{276.6, 96.7, 215.8, 139.7, 162.0, 157.8, 251.4, 178.3, 55.2, 0}},        // Oregon
}};

// Table 3 (right), top-right triangle: bandwidth in Mbps. Only i < j entries
// are meaningful; the matrix is symmetric.
constexpr std::array<std::array<double, kRegionCount>, kRegionCount> kBandwidthMbps = {{
    //  CT   Tok    Mum    Syd    Sto    Mil    Bah    SP     Ohi    Ore
    {{0, 26.1, 36.0, 20.8, 59.8, 67.1, 33.6, 27.1, 43.6, 35.9}},               // Cape Town
    {{0, 0, 89.3, 112.1, 42.1, 48.1, 66.8, 39.3, 85.8, 108.8}},                // Tokyo
    {{0, 0, 0, 75.9, 81.3, 103.2, 336.3, 30.8, 53.3, 48.5}},                   // Mumbai
    {{0, 0, 0, 0, 32.0, 42.4, 59.6, 31.2, 57.0, 80.8}},                        // Sydney
    {{0, 0, 0, 0, 0, 404.6, 81.8, 48.2, 94.7, 67.6}},                          // Stockholm
    {{0, 0, 0, 0, 0, 0, 105.7, 49.4, 104.9, 70.1}},                            // Milan
    {{0, 0, 0, 0, 0, 0, 0, 29.9, 49.4, 38.7}},                                 // Bahrain
    {{0, 0, 0, 0, 0, 0, 0, 0, 92.3, 60.5}},                                    // Sao Paulo
    {{0, 0, 0, 0, 0, 0, 0, 0, 0, 105.0}},                                      // Ohio
    {{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},                                          // Oregon
}};

// §5.1: datacenter links are 10 Gbps with 1 ms latency.
constexpr double kIntraRegionRttMs = 1.0;
constexpr double kIntraRegionBandwidthMbps = 10000.0;

}  // namespace

double Topology::RttMs(Region a, Region b) {
  const size_t i = static_cast<size_t>(a);
  const size_t j = static_cast<size_t>(b);
  if (i == j) {
    return kIntraRegionRttMs;
  }
  return i > j ? kRttMs[i][j] : kRttMs[j][i];
}

double Topology::BandwidthMbps(Region a, Region b) {
  const size_t i = static_cast<size_t>(a);
  const size_t j = static_cast<size_t>(b);
  if (i == j) {
    return kIntraRegionBandwidthMbps;
  }
  return i < j ? kBandwidthMbps[i][j] : kBandwidthMbps[j][i];
}

const LinkParams* Topology::LinkTable() {
  // Built once, thread-safe (magic static); read-only afterwards so parallel
  // experiment cells share it without synchronisation.
  static const LinkParams* const kTable = [] {
    auto* table = new LinkParams[kRegionCount * kRegionCount];
    for (size_t i = 0; i < kRegionCount; ++i) {
      for (size_t j = 0; j < kRegionCount; ++j) {
        const Region a = static_cast<Region>(i);
        const Region b = static_cast<Region>(j);
        LinkParams& link = table[i * kRegionCount + j];
        link.propagation = MillisecondsF(RttMs(a, b) / 2.0);
        link.bandwidth_bps = BandwidthMbps(a, b) * 1e6;
      }
    }
    return table;
  }();
  return kTable;
}

SimDuration Topology::PropagationDelay(Region a, Region b) {
  return Link(a, b).propagation;
}

SimDuration Topology::TransmissionDelay(Region a, Region b, int64_t bytes) {
  return TransmissionDelayOn(Link(a, b), bytes);
}

}  // namespace diablo
