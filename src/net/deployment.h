// The five deployment configurations of Table 3 (left): how many blockchain
// nodes, on what machine class, spread over which regions.
#ifndef SRC_NET_DEPLOYMENT_H_
#define SRC_NET_DEPLOYMENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/net/region.h"

namespace diablo {

// AWS c5 instance classes used in the paper.
struct MachineSpec {
  int vcpus = 4;
  int memory_gib = 8;
};

struct DeploymentConfig {
  std::string name;
  int node_count = 10;
  MachineSpec machine;
  // Nodes are assigned round-robin over these regions (the paper spreads
  // machines equally among regions).
  std::vector<Region> regions;

  // Region of the i-th node.
  Region NodeRegion(int index) const {
    return regions[static_cast<size_t>(index) % regions.size()];
  }
};

// Named configurations from Table 3: "datacenter", "testnet", "devnet",
// "community", "consortium". Also accepts "xl-<count>" (e.g. "xl-10000") for
// fig3-XL deployments: <count> c5.xlarge validators over all ten regions.
DeploymentConfig GetDeployment(std::string_view name);

// All five configurations, in the paper's order.
std::vector<DeploymentConfig> AllDeployments();

// All ten regions in enum order (used by devnet/community/consortium).
std::vector<Region> AllRegions();

}  // namespace diablo

#endif  // SRC_NET_DEPLOYMENT_H_
