// The simulated wide-area network.
//
// Hosts register with a region; messages between hosts experience the
// Table 3 propagation delay and bandwidth-dependent transmission delay of
// their region pair, plus jitter. Broadcasts run over a gossip tree so a
// sender's uplink is serialized across its fanout — the mechanism behind
// leader-bottleneck effects in the leader-based chains.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/net/region.h"
#include "src/net/topology.h"
#include "src/sim/simulation.h"
#include "src/support/rng.h"
#include "src/support/shard_guard.h"

namespace diablo {

using HostId = uint32_t;

// Returned for undeliverable messages (partitioned hosts).
inline constexpr SimDuration kUnreachable = -1;

// True when an n×n delay matrix cannot even be counted in size_t. Guards
// FillPairwiseDelays before it sizes the output — without it, hosts.size()
// squared silently wraps at huge N and the matrix misallocates.
inline constexpr bool PairwiseDelayCountOverflows(size_t n) {
  return n != 0 && n > std::numeric_limits<size_t>::max() / n;
}

// Reusable working memory for BroadcastDelaysInto. Engines own one instance
// and pass it to every broadcast so steady-state rounds never allocate.
struct BroadcastScratch {
  struct TreeNode {
    HostId host;
    SimDuration ready;  // time the payload is fully received at this node
  };
  std::vector<size_t> order;
  std::vector<TreeNode> frontier;
};

class Network;

// Snapshot delay model for large deployments: O(hosts + regions²) bytes.
//
// The dense PairwiseDelays matrix costs 2·8·n bytes *per validator*; at
// 10,000 validators that is ~160 KB each — 1.6 GB for the cell — before a
// single event runs. This model stores two bytes per host (region, partition
// snapshot) plus the memoised per-region-pair deterministic base, and
// re-derives the jitter term of any ordered pair on demand from a
// counter-based half-normal draw keyed on (seed, from, to). Every at(i, j)
// is a pure function, so the model supports random access (Avalanche's peer
// sampling) and streaming column scans (quorum kernels) without ever
// materialising n² state. Like the dense matrix, it snapshots topology,
// extra delays and partitions at construction time.
class StreamedDelays {
 public:
  StreamedDelays(Network* net, const std::vector<HostId>& hosts, int64_t message_bytes);

  size_t size() const { return region_.size(); }

  // One-way delay for the ordered pair of host-vector indices (from, to);
  // deterministic per (model seed, from, to). kUnreachable when either
  // endpoint was partitioned at construction.
  SimDuration at(size_t from, size_t to) const;

  // Lower bound on at(i, j) over all distinct non-partitioned index pairs:
  // the minimum deterministic base (propagation + transmission + extra) over
  // populated region pairs, jitter being non-negative. 0 when fewer than two
  // hosts can form a pair. Used as the conservative lookahead of the windowed
  // parallel scheduler.
  SimDuration MinLinkDelay() const;

  // Bytes owned by this model; the fig3-XL memory-budget tests assert this
  // stays linear in the host count with a small constant.
  size_t ApproxBytes() const {
    return sizeof(*this) + region_.capacity() + partitioned_.capacity();
  }

 private:
  struct Base {
    SimDuration base = 0;  // propagation + transmission + extra delay
    double prop = 0.0;     // propagation in ticks, scales the jitter draw
  };

  std::vector<uint8_t> region_;       // region byte per host index
  std::vector<uint8_t> partitioned_;  // partition snapshot per host index
  std::array<Base, kRegionCount * kRegionCount> base_{};
  double jitter_frac_ = 0.0;
  uint64_t jitter_seed_ = 0;
};

// Streaming quorum-arrival kernel for large N: the time at which `receiver`
// holds votes from `quorum` of the `count` senders, where sender j starts at
// send_times[j] (kUnreachable = never votes) and each vote travels
// hop_scale relayed hops of the streamed delay model. Exactly the dense
// QuorumArrival reduction, but the receiver's delay column is derived on the
// fly — no n² matrix exists. `scratch` carries the arrival buffer across
// calls so steady-state rounds do not allocate.
SimDuration QuorumArrivalLargeN(const StreamedDelays& delays,
                                const SimDuration* send_times, size_t count,
                                size_t receiver, size_t quorum, double hop_scale,
                                std::vector<SimDuration>* scratch);

// Sender-list form for committee-sampled rounds: senders[j] is the host
// index of the j-th committee member and sender_times[j] its vote start.
// Cost is O(committee), independent of the deployment size.
SimDuration QuorumArrivalLargeN(const StreamedDelays& delays, const uint32_t* senders,
                                const SimDuration* sender_times, size_t count,
                                size_t receiver, size_t quorum, double hop_scale,
                                std::vector<SimDuration>* scratch);

// Per-network message accounting, so fault runs are observable: how many
// point-to-point sends happened, how many were dropped because an endpoint
// was unreachable, and how many fell to an injected loss window.
struct NetworkStats {
  uint64_t sends = 0;              // Send() calls
  uint64_t unreachable_drops = 0;  // Send() drops: endpoint partitioned/lost
  uint64_t loss_drops = 0;         // messages dropped by a loss window
};

class Network {
 public:
  // `jitter_frac` scales a half-normal jitter term added to propagation.
  explicit Network(Simulation* sim, double jitter_frac = 0.05);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  HostId AddHost(Region region);
  Region HostRegion(HostId host) const { return regions_[host]; }
  size_t host_count() const { return regions_.size(); }

  // Samples a one-way delay for `bytes` from `from` to `to`. Returns
  // kUnreachable when either endpoint is partitioned off.
  SimDuration DelaySample(HostId from, HostId to, int64_t bytes);

  // DelaySample with the jitter draw taken from a caller-owned generator
  // instead of this network's shared stream. Components that run inside a
  // parallel window (detlint rule D6) must use this form with a stream they
  // own: arithmetic and semantics are identical sample for sample, only the
  // generator differs.
  SimDuration DelaySampleFrom(Rng* rng, HostId from, HostId to, int64_t bytes);

  // Lower bound on any delay DelaySample can return for a pair of *distinct*
  // hosts (self-delivery is always 0): the minimum propagation + extra delay
  // over region pairs that currently have enough hosts to form a distinct
  // pair. Transmission and jitter are non-negative, so they never lower it.
  // Returns 0 when fewer than two hosts exist. This is the conservative
  // lookahead bound of the windowed parallel scheduler.
  SimDuration MinLinkDelay() const;

  // Window-aware form: a lower bound on any distinct-pair delay sampled at a
  // simulation time in [from, to), accounting for registered delay-spike
  // windows (AddDelaySpikeWindow). Per populated region pair it replays the
  // spike onset/heal writers in their serial execution order — the value in
  // force at `from` (a heal landing exactly at `from` already applies: the
  // heal is a serial event that runs before any window headed there) and the
  // minimum over writers strictly inside (from, to) — and takes propagation
  // plus that floor. Never below MinLinkDelay() computed with zero extras,
  // and never above the true minimum: writers the registry does not know
  // about (e.g. direct SetExtraDelay calls) are treated as zero, which only
  // lowers the bound. Pure function of (from, to) and the registrations.
  SimDuration MinLinkDelayInWindow(SimTime from, SimTime to) const;

  bool HasDelaySpikeWindows() const { return !spike_windows_.empty(); }

  // Fills `out` (resized to n*n, row-major: out[from*n+to]) with one delay
  // sample per ordered host pair — exactly the samples DelaySample would
  // return pair by pair in row-major order, jitter draws included. The
  // deterministic part of each sample (propagation + transmission +
  // extra delay) is memoised per region pair, so only the jitter draw runs
  // per entry.
  void FillPairwiseDelays(const std::vector<HostId>& hosts, int64_t message_bytes,
                          std::vector<SimDuration>* out);

  // Schedules `fn` at the destination after a sampled delay; drops the
  // message silently when unreachable (like a real network would).
  void Send(HostId from, HostId to, int64_t bytes, EventFn fn);

  // Delay from `origin` to each entry of `recipients` when `bytes` are
  // disseminated through a gossip tree with the given fanout. recipients[i]
  // may equal origin (delay 0). Unreachable hosts get kUnreachable.
  std::vector<SimDuration> BroadcastDelays(HostId origin,
                                           const std::vector<HostId>& recipients,
                                           int64_t bytes, int fanout);

  // BroadcastDelays into caller-owned buffers: identical tree, identical RNG
  // draws, zero allocations once `scratch` and `result` are warm.
  void BroadcastDelaysInto(HostId origin, const std::vector<HostId>& recipients,
                           int64_t bytes, int fanout, BroadcastScratch* scratch,
                           std::vector<SimDuration>* result);

  // Fault injection: adds a fixed extra delay on one region pair (both
  // directions — the matrix stays symmetric), or cuts a host off entirely.
  void SetExtraDelay(Region a, Region b, SimDuration extra);
  void SetPartitioned(HostId host, bool partitioned);

  // Message-loss window: inside [from, to) each sampled message drops with
  // probability `rate`, on every link or (with regions given) on one region
  // pair in both directions. `to` < 0 keeps the window open to the end of
  // the run. Loss draws come from a generator forked off this network's
  // stream on the first window registration, so configuring no window
  // leaves every other draw sequence — and therefore the healthy-run
  // results — untouched.
  void AddLossWindow(SimTime from, SimTime to, double rate);
  void AddLossWindow(Region a, Region b, SimTime from, SimTime to, double rate);

  // Delay-spike window registration: records that `extra` is written onto
  // every link (or one region pair, both directions) at time `at` and healed
  // back to zero at `until` (`until` < 0 leaves the spike active to the end
  // of the run). Registration is bookkeeping only — the actual SetExtraDelay
  // mutations stay scheduled as serial events by the fault injector — but it
  // lets MinLinkDelayInWindow widen the parallel scheduler's lookahead while
  // a spike is in force. Register in the same order the mutations are
  // scheduled so same-time onset/heal writers replay in execution order.
  void AddDelaySpikeWindow(SimTime at, SimTime until, SimDuration extra);
  void AddDelaySpikeWindow(Region a, Region b, SimTime at, SimTime until,
                           SimDuration extra);

  const NetworkStats& stats() const { return stats_; }

  // Checked build: window-time owner of the shared jitter stream, the fault
  // stream and the message counters. Send, DelaySample, BroadcastDelaysInto,
  // FillPairwiseDelays and LossDrop assert the caller runs on the owning
  // shard (or serial); DelaySampleFrom stays unguarded on its caller-owned
  // draw path because that is exactly the form sharded clients may use.
  // Bound by ChainContext::BindShardOwners.
  shard_guard::ShardOwner& shard_owner() { return guard_; }

  Simulation* sim() { return sim_; }

 private:
  // Reads the memoised link bases, the partition vector and one seed draw at
  // construction time.
  friend class StreamedDelays;

  struct LossWindow {
    SimTime from = 0;
    SimTime to = 0;  // exclusive; open windows store SimTime max
    double rate = 0;
    bool all_pairs = true;
    Region a = Region::kOhio;
    Region b = Region::kOhio;
  };

  struct SpikeWindow {
    SimTime at = 0;
    SimTime until = 0;  // heal instant; open windows store SimTime max
    SimDuration extra = 0;
    bool all_pairs = true;
    Region a = Region::kOhio;
    Region b = Region::kOhio;
  };

  SimDuration ExtraDelay(Region a, Region b) const {
    return extra_delays_[static_cast<size_t>(a) * kRegionCount +
                         static_cast<size_t>(b)];
  }

  // True when a message between the two regions drops under an active loss
  // window at the current simulation time. Draws from fault_rng_.
  bool LossDrop(Region a, Region b);

  Simulation* sim_;
  double jitter_frac_;
  shard_guard::ShardOwner guard_;
  Rng rng_;
  std::vector<Region> regions_;
  std::vector<bool> partitioned_;
  // Dense region-pair matrix of injected extra delays, symmetric; zero when
  // no fault is active. Dense so the per-message lookup is O(1) instead of a
  // scan over the configured faults.
  std::vector<SimDuration> extra_delays_;
  std::vector<LossWindow> loss_windows_;
  std::vector<SpikeWindow> spike_windows_;
  // Forked lazily (see AddLossWindow); meaningful only when loss windows
  // exist.
  Rng fault_rng_{0};
  NetworkStats stats_;
};

}  // namespace diablo

#endif  // SRC_NET_NETWORK_H_
