// The simulated wide-area network.
//
// Hosts register with a region; messages between hosts experience the
// Table 3 propagation delay and bandwidth-dependent transmission delay of
// their region pair, plus jitter. Broadcasts run over a gossip tree so a
// sender's uplink is serialized across its fanout — the mechanism behind
// leader-bottleneck effects in the leader-based chains.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <vector>

#include "src/net/region.h"
#include "src/net/topology.h"
#include "src/sim/simulation.h"
#include "src/support/rng.h"

namespace diablo {

using HostId = uint32_t;

// Returned for undeliverable messages (partitioned hosts).
inline constexpr SimDuration kUnreachable = -1;

class Network {
 public:
  // `jitter_frac` scales a half-normal jitter term added to propagation.
  explicit Network(Simulation* sim, double jitter_frac = 0.05);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  HostId AddHost(Region region);
  Region HostRegion(HostId host) const { return regions_[host]; }
  size_t host_count() const { return regions_.size(); }

  // Samples a one-way delay for `bytes` from `from` to `to`. Returns
  // kUnreachable when either endpoint is partitioned off.
  SimDuration DelaySample(HostId from, HostId to, int64_t bytes);

  // Schedules `fn` at the destination after a sampled delay; drops the
  // message silently when unreachable (like a real network would).
  void Send(HostId from, HostId to, int64_t bytes, EventFn fn);

  // Delay from `origin` to each entry of `recipients` when `bytes` are
  // disseminated through a gossip tree with the given fanout. recipients[i]
  // may equal origin (delay 0). Unreachable hosts get kUnreachable.
  std::vector<SimDuration> BroadcastDelays(HostId origin,
                                           const std::vector<HostId>& recipients,
                                           int64_t bytes, int fanout);

  // Fault injection: adds a fixed extra delay on one region pair (both
  // directions), or cuts a host off entirely.
  void SetExtraDelay(Region a, Region b, SimDuration extra);
  void SetPartitioned(HostId host, bool partitioned);

  Simulation* sim() { return sim_; }

 private:
  SimDuration ExtraDelay(Region a, Region b) const {
    return extra_delays_[static_cast<size_t>(a) * kRegionCount +
                         static_cast<size_t>(b)];
  }

  Simulation* sim_;
  double jitter_frac_;
  Rng rng_;
  std::vector<Region> regions_;
  std::vector<bool> partitioned_;
  // Dense region-pair matrix of injected extra delays, symmetric; zero when
  // no fault is active. Dense so the per-message lookup is O(1) instead of a
  // scan over the configured faults.
  std::vector<SimDuration> extra_delays_;
};

}  // namespace diablo

#endif  // SRC_NET_NETWORK_H_
