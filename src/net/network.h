// The simulated wide-area network.
//
// Hosts register with a region; messages between hosts experience the
// Table 3 propagation delay and bandwidth-dependent transmission delay of
// their region pair, plus jitter. Broadcasts run over a gossip tree so a
// sender's uplink is serialized across its fanout — the mechanism behind
// leader-bottleneck effects in the leader-based chains.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <vector>

#include "src/net/region.h"
#include "src/net/topology.h"
#include "src/sim/simulation.h"
#include "src/support/rng.h"

namespace diablo {

using HostId = uint32_t;

// Returned for undeliverable messages (partitioned hosts).
inline constexpr SimDuration kUnreachable = -1;

// Reusable working memory for BroadcastDelaysInto. Engines own one instance
// and pass it to every broadcast so steady-state rounds never allocate.
struct BroadcastScratch {
  struct TreeNode {
    HostId host;
    SimDuration ready;  // time the payload is fully received at this node
  };
  std::vector<size_t> order;
  std::vector<TreeNode> frontier;
};

// Per-network message accounting, so fault runs are observable: how many
// point-to-point sends happened, how many were dropped because an endpoint
// was unreachable, and how many fell to an injected loss window.
struct NetworkStats {
  uint64_t sends = 0;              // Send() calls
  uint64_t unreachable_drops = 0;  // Send() drops: endpoint partitioned/lost
  uint64_t loss_drops = 0;         // messages dropped by a loss window
};

class Network {
 public:
  // `jitter_frac` scales a half-normal jitter term added to propagation.
  explicit Network(Simulation* sim, double jitter_frac = 0.05);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  HostId AddHost(Region region);
  Region HostRegion(HostId host) const { return regions_[host]; }
  size_t host_count() const { return regions_.size(); }

  // Samples a one-way delay for `bytes` from `from` to `to`. Returns
  // kUnreachable when either endpoint is partitioned off.
  SimDuration DelaySample(HostId from, HostId to, int64_t bytes);

  // Fills `out` (resized to n*n, row-major: out[from*n+to]) with one delay
  // sample per ordered host pair — exactly the samples DelaySample would
  // return pair by pair in row-major order, jitter draws included. The
  // deterministic part of each sample (propagation + transmission +
  // extra delay) is memoised per region pair, so only the jitter draw runs
  // per entry.
  void FillPairwiseDelays(const std::vector<HostId>& hosts, int64_t message_bytes,
                          std::vector<SimDuration>* out);

  // Schedules `fn` at the destination after a sampled delay; drops the
  // message silently when unreachable (like a real network would).
  void Send(HostId from, HostId to, int64_t bytes, EventFn fn);

  // Delay from `origin` to each entry of `recipients` when `bytes` are
  // disseminated through a gossip tree with the given fanout. recipients[i]
  // may equal origin (delay 0). Unreachable hosts get kUnreachable.
  std::vector<SimDuration> BroadcastDelays(HostId origin,
                                           const std::vector<HostId>& recipients,
                                           int64_t bytes, int fanout);

  // BroadcastDelays into caller-owned buffers: identical tree, identical RNG
  // draws, zero allocations once `scratch` and `result` are warm.
  void BroadcastDelaysInto(HostId origin, const std::vector<HostId>& recipients,
                           int64_t bytes, int fanout, BroadcastScratch* scratch,
                           std::vector<SimDuration>* result);

  // Fault injection: adds a fixed extra delay on one region pair (both
  // directions — the matrix stays symmetric), or cuts a host off entirely.
  void SetExtraDelay(Region a, Region b, SimDuration extra);
  void SetPartitioned(HostId host, bool partitioned);

  // Message-loss window: inside [from, to) each sampled message drops with
  // probability `rate`, on every link or (with regions given) on one region
  // pair in both directions. `to` < 0 keeps the window open to the end of
  // the run. Loss draws come from a generator forked off this network's
  // stream on the first window registration, so configuring no window
  // leaves every other draw sequence — and therefore the healthy-run
  // results — untouched.
  void AddLossWindow(SimTime from, SimTime to, double rate);
  void AddLossWindow(Region a, Region b, SimTime from, SimTime to, double rate);

  const NetworkStats& stats() const { return stats_; }

  Simulation* sim() { return sim_; }

 private:
  struct LossWindow {
    SimTime from = 0;
    SimTime to = 0;  // exclusive; open windows store SimTime max
    double rate = 0;
    bool all_pairs = true;
    Region a = Region::kOhio;
    Region b = Region::kOhio;
  };

  SimDuration ExtraDelay(Region a, Region b) const {
    return extra_delays_[static_cast<size_t>(a) * kRegionCount +
                         static_cast<size_t>(b)];
  }

  // True when a message between the two regions drops under an active loss
  // window at the current simulation time. Draws from fault_rng_.
  bool LossDrop(Region a, Region b);

  Simulation* sim_;
  double jitter_frac_;
  Rng rng_;
  std::vector<Region> regions_;
  std::vector<bool> partitioned_;
  // Dense region-pair matrix of injected extra delays, symmetric; zero when
  // no fault is active. Dense so the per-message lookup is O(1) instead of a
  // scan over the configured faults.
  std::vector<SimDuration> extra_delays_;
  std::vector<LossWindow> loss_windows_;
  // Forked lazily (see AddLossWindow); meaningful only when loss windows
  // exist.
  Rng fault_rng_{0};
  NetworkStats stats_;
};

}  // namespace diablo

#endif  // SRC_NET_NETWORK_H_
