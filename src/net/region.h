// The ten AWS regions used by the paper's deployments (§5.1, Table 3).
#ifndef SRC_NET_REGION_H_
#define SRC_NET_REGION_H_

#include <cstdint>
#include <string_view>

namespace diablo {

enum class Region : uint8_t {
  kCapeTown = 0,
  kTokyo = 1,
  kMumbai = 2,
  kSydney = 3,
  kStockholm = 4,
  kMilan = 5,
  kBahrain = 6,
  kSaoPaulo = 7,
  kOhio = 8,
  kOregon = 9,
};

inline constexpr int kRegionCount = 10;

std::string_view RegionName(Region region);

// Parses a region name (case-insensitive, spaces/underscores/dashes ignored).
// Returns false if no region matches.
bool ParseRegion(std::string_view name, Region* out);

}  // namespace diablo

#endif  // SRC_NET_REGION_H_
