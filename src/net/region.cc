#include "src/net/region.h"

#include <array>
#include <cctype>
#include <string>

namespace diablo {
namespace {

constexpr std::array<std::string_view, kRegionCount> kNames = {
    "Cape Town", "Tokyo", "Mumbai",    "Sydney", "Stockholm",
    "Milan",     "Bahrain", "Sao Paulo", "Ohio",   "Oregon",
};

std::string Canonicalize(std::string_view name) {
  std::string out;
  for (char c : name) {
    if (c == ' ' || c == '_' || c == '-') {
      continue;
    }
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

std::string_view RegionName(Region region) {
  return kNames[static_cast<size_t>(region)];
}

bool ParseRegion(std::string_view name, Region* out) {
  const std::string canonical = Canonicalize(name);
  for (int i = 0; i < kRegionCount; ++i) {
    if (canonical == Canonicalize(kNames[static_cast<size_t>(i)])) {
      *out = static_cast<Region>(i);
      return true;
    }
  }
  // AWS availability-zone style aliases used in workload specs (§4 example).
  if (canonical == "useast2") {
    *out = Region::kOhio;
    return true;
  }
  if (canonical == "uswest2") {
    *out = Region::kOregon;
    return true;
  }
  return false;
}

}  // namespace diablo
