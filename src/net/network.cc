#include "src/net/network.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>

#include "src/support/check.h"
#include "src/support/profile.h"

namespace diablo {

Network::Network(Simulation* sim, double jitter_frac)
    : sim_(sim),
      jitter_frac_(jitter_frac),
      rng_(sim->ForkRng()),
      extra_delays_(kRegionCount * kRegionCount, 0) {}

Network::~Network() { profile::AddSends(stats_.sends); }

HostId Network::AddHost(Region region) {
  regions_.push_back(region);
  partitioned_.push_back(false);
  return static_cast<HostId>(regions_.size() - 1);
}

SimDuration Network::DelaySample(HostId from, HostId to, int64_t bytes) {
  // Draws from the network's shared jitter stream; sharded callers that are
  // not the owning shard must use DelaySampleFrom with a stream they own.
  guard_.AssertAccess();
  return DelaySampleFrom(&rng_, from, to, bytes);
}

SimDuration Network::DelaySampleFrom(Rng* rng, HostId from, HostId to,
                                     int64_t bytes) {
  if (partitioned_[from] || partitioned_[to]) {
    return kUnreachable;
  }
  if (from == to) {
    return 0;
  }
  const Region a = regions_[from];
  const Region b = regions_[to];
  if (!loss_windows_.empty() && LossDrop(a, b)) {
    return kUnreachable;
  }
  const LinkParams& link = Topology::Link(a, b);
  const SimDuration prop = link.propagation;
  const SimDuration trans = Topology::TransmissionDelayOn(link, bytes);
  const double jitter_scale = jitter_frac_ * std::abs(rng->NextGaussian(0.0, 1.0));
  const SimDuration jitter =
      static_cast<SimDuration>(static_cast<double>(prop) * jitter_scale);
  const SimDuration delay = prop + trans + jitter + ExtraDelay(a, b);
  // |jitter| and extra delays are non-negative, so a negative sample can only
  // mean arithmetic overflow — which would reorder deliveries silently.
  DIABLO_CHECK(delay >= 0, "sampled link delay went negative (overflow?)");
  return delay;
}

SimDuration Network::MinLinkDelay() const {
  std::array<uint32_t, kRegionCount> counts{};
  for (const Region region : regions_) {
    ++counts[static_cast<size_t>(region)];
  }
  SimDuration best = std::numeric_limits<SimDuration>::max();
  for (int a = 0; a < kRegionCount; ++a) {
    if (counts[static_cast<size_t>(a)] == 0) {
      continue;
    }
    for (int b = 0; b < kRegionCount; ++b) {
      if (counts[static_cast<size_t>(b)] == 0) {
        continue;
      }
      if (a == b && counts[static_cast<size_t>(a)] < 2) {
        continue;  // no distinct pair lives on this self-link
      }
      const SimDuration bound =
          Topology::Link(static_cast<Region>(a), static_cast<Region>(b)).propagation +
          ExtraDelay(static_cast<Region>(a), static_cast<Region>(b));
      best = std::min(best, bound);
    }
  }
  return best == std::numeric_limits<SimDuration>::max() ? 0 : best;
}

SimDuration Network::MinLinkDelayInWindow(SimTime from, SimTime to) const {
  std::array<uint32_t, kRegionCount> counts{};
  for (const Region region : regions_) {
    ++counts[static_cast<size_t>(region)];
  }
  // One (time, value) writer per spike edge: the onset writes `extra`, the
  // heal writes 0. Collected in registration order and stable-sorted by
  // time, the sequence reproduces the serial execution order of the
  // injector's SetExtraDelay events (equal-time writers keep their push
  // order, exactly like equal-time events in the queue).
  struct Writer {
    SimTime time;
    SimDuration value;
  };
  std::vector<Writer> writers;
  SimDuration best = std::numeric_limits<SimDuration>::max();
  for (int a = 0; a < kRegionCount; ++a) {
    if (counts[static_cast<size_t>(a)] == 0) {
      continue;
    }
    for (int b = 0; b < kRegionCount; ++b) {
      if (counts[static_cast<size_t>(b)] == 0) {
        continue;
      }
      if (a == b && counts[static_cast<size_t>(a)] < 2) {
        continue;  // no distinct pair lives on this self-link
      }
      const Region ra = static_cast<Region>(a);
      const Region rb = static_cast<Region>(b);
      writers.clear();
      for (const SpikeWindow& spike : spike_windows_) {
        const bool applies =
            spike.all_pairs || (spike.a == ra && spike.b == rb) ||
            (spike.a == rb && spike.b == ra);
        if (!applies) {
          continue;
        }
        writers.push_back(Writer{spike.at, spike.extra});
        if (spike.until != std::numeric_limits<SimTime>::max()) {
          writers.push_back(Writer{spike.until, 0});
        }
      }
      std::stable_sort(writers.begin(), writers.end(),
                       [](const Writer& x, const Writer& y) {
                         return x.time < y.time;
                       });
      // Extra delay in force at `from`: the last writer at or before it (a
      // heal at exactly `from` counts — it is a serial event and serial
      // events run before any window headed at the same instant). Then the
      // floor over [from, to) is the minimum of that and every writer that
      // lands strictly inside the span.
      SimDuration value_at_from = 0;
      for (const Writer& w : writers) {
        if (w.time <= from) {
          value_at_from = w.value;
        }
      }
      SimDuration floor = value_at_from;
      for (const Writer& w : writers) {
        if (w.time > from && w.time < to) {
          floor = std::min(floor, w.value);
        }
      }
      const SimDuration bound =
          Topology::Link(ra, rb).propagation + floor;
      best = std::min(best, bound);
    }
  }
  return best == std::numeric_limits<SimDuration>::max() ? 0 : best;
}

void Network::FillPairwiseDelays(const std::vector<HostId>& hosts,
                                 int64_t message_bytes,
                                 std::vector<SimDuration>* out) {
  guard_.AssertAccess();
  const size_t n = hosts.size();
  if (PairwiseDelayCountOverflows(n)) {
    // n² wrapped size_t: assigning the wrapped count would silently build a
    // far-too-small matrix and every at(from, to) past it would read out of
    // bounds. Deployments this large must use StreamedDelays instead.
    CheckFailed(__FILE__, __LINE__, "hosts.size() * hosts.size() overflows size_t",
                "pairwise delay matrix too large; use the streamed large-N model");
  }
  out->assign(n * n, 0);
  // Topology, extra delays and partitions are fixed for the duration of this
  // call, so the deterministic part of a sample is a pure function of the
  // region pair. Memoise it and pay only the jitter draw per entry. Entries
  // are visited in the same row-major order — and draw the RNG under exactly
  // the same conditions — as a DelaySample-per-pair loop, keeping the stream
  // bit-identical.
  struct BaseEntry {
    SimDuration base = 0;
    double prop = 0.0;
    bool ready = false;
  };
  std::array<BaseEntry, kRegionCount * kRegionCount> cache{};
  SimDuration* row = out->data();
  for (size_t i = 0; i < n; ++i, row += n) {
    const HostId from = hosts[i];
    const bool from_partitioned = partitioned_[from];
    for (size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;  // assign() zeroed the diagonal
      }
      const HostId to = hosts[j];
      if (from_partitioned || partitioned_[to]) {
        row[j] = kUnreachable;
        continue;
      }
      if (from == to) {
        row[j] = 0;
        continue;
      }
      const Region a = regions_[from];
      const Region b = regions_[to];
      if (!loss_windows_.empty() && LossDrop(a, b)) {
        row[j] = kUnreachable;
        continue;
      }
      BaseEntry& entry =
          cache[static_cast<size_t>(a) * kRegionCount + static_cast<size_t>(b)];
      if (!entry.ready) {
        const LinkParams& link = Topology::Link(a, b);
        entry.base = link.propagation + Topology::TransmissionDelayOn(link, message_bytes) +
                     ExtraDelay(a, b);
        entry.prop = static_cast<double>(link.propagation);
        entry.ready = true;
      }
      const double jitter_scale = jitter_frac_ * std::abs(rng_.NextGaussian(0.0, 1.0));
      row[j] = entry.base + static_cast<SimDuration>(entry.prop * jitter_scale);
    }
  }
}

void Network::Send(HostId from, HostId to, int64_t bytes, EventFn fn) {
  guard_.AssertAccess();
  ++stats_.sends;
  const SimDuration delay = DelaySample(from, to, bytes);
  if (delay == kUnreachable) {
    // Dropped like a real network would drop it — but counted, so fault
    // runs can report how much traffic the failure destroyed.
    ++stats_.unreachable_drops;
    return;
  }
  sim_->Schedule(delay, std::move(fn));
}

std::vector<SimDuration> Network::BroadcastDelays(HostId origin,
                                                  const std::vector<HostId>& recipients,
                                                  int64_t bytes, int fanout) {
  BroadcastScratch scratch;
  std::vector<SimDuration> result;
  BroadcastDelaysInto(origin, recipients, bytes, fanout, &scratch, &result);
  return result;
}

void Network::BroadcastDelaysInto(HostId origin, const std::vector<HostId>& recipients,
                                  int64_t bytes, int fanout, BroadcastScratch* scratch,
                                  std::vector<SimDuration>* out) {
  guard_.AssertAccess();
  std::vector<SimDuration>& result = *out;
  result.assign(recipients.size(), kUnreachable);
  if (fanout < 1) {
    fanout = 1;
  }

  // Order the reachable recipients deterministically but unpredictably: the
  // tree shape changes every broadcast like a real gossip overlay.
  std::vector<size_t>& order = scratch->order;
  order.clear();
  for (size_t i = 0; i < recipients.size(); ++i) {
    if (recipients[i] == origin) {
      result[i] = 0;
      continue;
    }
    if (!partitioned_[recipients[i]] && !partitioned_[origin]) {
      order.push_back(i);
    }
  }
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng_.NextBelow(i)]);
  }

  // BFS gossip tree: parents forward `bytes` to up to `fanout` children; the
  // k-th child waits k transmission slots on the parent uplink.
  using TreeNode = BroadcastScratch::TreeNode;
  std::vector<TreeNode>& frontier = scratch->frontier;
  frontier.clear();
  frontier.push_back(TreeNode{origin, 0});
  size_t next = 0;
  size_t frontier_head = 0;
  while (next < order.size() && frontier_head < frontier.size()) {
    TreeNode parent = frontier[frontier_head++];
    for (int k = 0; k < fanout && next < order.size(); ++k, ++next) {
      const size_t idx = order[next];
      const HostId child = recipients[idx];
      const Region pr = regions_[parent.host];
      const Region cr = regions_[child];
      if (!loss_windows_.empty() && LossDrop(pr, cr)) {
        // The parent spent the uplink slot but the payload never arrived:
        // the recipient misses this broadcast entirely (result stays
        // kUnreachable and it cannot relay further).
        continue;
      }
      const LinkParams& link = Topology::Link(pr, cr);
      const SimDuration slot =
          Topology::TransmissionDelayOn(link, bytes) * static_cast<SimDuration>(k + 1);
      const SimDuration prop = link.propagation;
      const double jitter_scale = jitter_frac_ * std::abs(rng_.NextGaussian(0.0, 1.0));
      const SimDuration jitter =
          static_cast<SimDuration>(static_cast<double>(prop) * jitter_scale);
      const SimDuration arrival =
          parent.ready + slot + prop + jitter + ExtraDelay(pr, cr);
      result[idx] = arrival;
      frontier.push_back(TreeNode{child, arrival});
    }
  }
}

void Network::SetExtraDelay(Region a, Region b, SimDuration extra) {
  extra_delays_[static_cast<size_t>(a) * kRegionCount + static_cast<size_t>(b)] =
      extra;
  extra_delays_[static_cast<size_t>(b) * kRegionCount + static_cast<size_t>(a)] =
      extra;
}

void Network::SetPartitioned(HostId host, bool partitioned) {
  partitioned_[host] = partitioned;
}

void Network::AddLossWindow(SimTime from, SimTime to, double rate) {
  LossWindow window;
  window.from = from;
  window.to = to < 0 ? std::numeric_limits<SimTime>::max() : to;
  window.rate = rate;
  if (loss_windows_.empty()) {
    // First window: fork the loss stream now. Healthy runs never reach this
    // point, so their draw sequences are bit-identical with the feature
    // compiled in.
    fault_rng_ = rng_.Fork();
  }
  loss_windows_.push_back(window);
}

void Network::AddLossWindow(Region a, Region b, SimTime from, SimTime to,
                            double rate) {
  AddLossWindow(from, to, rate);
  LossWindow& window = loss_windows_.back();
  window.all_pairs = false;
  window.a = a;
  window.b = b;
}

void Network::AddDelaySpikeWindow(SimTime at, SimTime until, SimDuration extra) {
  SpikeWindow window;
  window.at = at;
  window.until = until < 0 ? std::numeric_limits<SimTime>::max() : until;
  window.extra = extra;
  spike_windows_.push_back(window);
}

void Network::AddDelaySpikeWindow(Region a, Region b, SimTime at, SimTime until,
                                  SimDuration extra) {
  AddDelaySpikeWindow(at, until, extra);
  SpikeWindow& window = spike_windows_.back();
  window.all_pairs = false;
  window.a = a;
  window.b = b;
}

StreamedDelays::StreamedDelays(Network* net, const std::vector<HostId>& hosts,
                               int64_t message_bytes)
    : jitter_frac_(net->jitter_frac_), jitter_seed_(net->rng_.NextU64()) {
  region_.reserve(hosts.size());
  partitioned_.reserve(hosts.size());
  for (const HostId host : hosts) {
    region_.push_back(static_cast<uint8_t>(net->regions_[host]));
    partitioned_.push_back(net->partitioned_[host] ? 1 : 0);
  }
  for (int a = 0; a < kRegionCount; ++a) {
    for (int b = 0; b < kRegionCount; ++b) {
      const LinkParams& link =
          Topology::Link(static_cast<Region>(a), static_cast<Region>(b));
      Base& entry =
          base_[static_cast<size_t>(a) * kRegionCount + static_cast<size_t>(b)];
      entry.base = link.propagation +
                   Topology::TransmissionDelayOn(link, message_bytes) +
                   net->ExtraDelay(static_cast<Region>(a), static_cast<Region>(b));
      entry.prop = static_cast<double>(link.propagation);
    }
  }
}

SimDuration StreamedDelays::MinLinkDelay() const {
  std::array<uint32_t, kRegionCount> counts{};
  for (size_t i = 0; i < region_.size(); ++i) {
    if (partitioned_[i] == 0) {
      ++counts[region_[i]];
    }
  }
  SimDuration best = std::numeric_limits<SimDuration>::max();
  for (int a = 0; a < kRegionCount; ++a) {
    if (counts[static_cast<size_t>(a)] == 0) {
      continue;
    }
    for (int b = 0; b < kRegionCount; ++b) {
      if (counts[static_cast<size_t>(b)] == 0) {
        continue;
      }
      if (a == b && counts[static_cast<size_t>(a)] < 2) {
        continue;
      }
      best = std::min(
          best,
          base_[static_cast<size_t>(a) * kRegionCount + static_cast<size_t>(b)].base);
    }
  }
  return best == std::numeric_limits<SimDuration>::max() ? 0 : best;
}

SimDuration StreamedDelays::at(size_t from, size_t to) const {
  if (from == to) {
    return 0;  // self-votes are instant, matching the dense matrix diagonal
  }
  if ((partitioned_[from] | partitioned_[to]) != 0) {
    return kUnreachable;
  }
  const Base& entry =
      base_[static_cast<size_t>(region_[from]) * kRegionCount + region_[to]];
  // Counter-based half-normal jitter: two splitmix64 outputs keyed on
  // (model seed, from, to) feed the same Box-Muller arithmetic as
  // Rng::NextGaussian, so any pair's jitter is recomputable in O(1) without
  // storing it — the property that lets the kernels stream.
  uint64_t state = jitter_seed_ ^ ((static_cast<uint64_t>(from) << 32) |
                                   static_cast<uint64_t>(to));
  double u1 = static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double gauss = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double jitter_scale = jitter_frac_ * std::abs(gauss);
  return entry.base + static_cast<SimDuration>(entry.prop * jitter_scale);
}

namespace {

// Shared tail of both QuorumArrivalLargeN forms: exact k-th smallest of the
// collected arrivals.
SimDuration SelectQuorum(std::vector<SimDuration>* arrivals, size_t quorum) {
  if (arrivals->size() < quorum) {
    return kUnreachable;
  }
  std::nth_element(arrivals->begin(), arrivals->begin() + static_cast<long>(quorum - 1),
                   arrivals->end());
  return (*arrivals)[quorum - 1];
}

}  // namespace

SimDuration QuorumArrivalLargeN(const StreamedDelays& delays,
                                const SimDuration* send_times, size_t count,
                                size_t receiver, size_t quorum, double hop_scale,
                                std::vector<SimDuration>* scratch) {
  if (quorum == 0) {
    return kUnreachable;
  }
  scratch->clear();
  for (size_t j = 0; j < count; ++j) {
    const SimDuration s = send_times[j];
    if (s == kUnreachable) {
      continue;  // the jitter derivation is skipped for silent senders
    }
    const SimDuration hop = delays.at(j, receiver);
    if (hop == kUnreachable) {
      continue;
    }
    scratch->push_back(
        s + static_cast<SimDuration>(static_cast<double>(hop) * hop_scale));
  }
  return SelectQuorum(scratch, quorum);
}

SimDuration QuorumArrivalLargeN(const StreamedDelays& delays, const uint32_t* senders,
                                const SimDuration* sender_times, size_t count,
                                size_t receiver, size_t quorum, double hop_scale,
                                std::vector<SimDuration>* scratch) {
  if (quorum == 0) {
    return kUnreachable;
  }
  scratch->clear();
  for (size_t j = 0; j < count; ++j) {
    const SimDuration s = sender_times[j];
    if (s == kUnreachable) {
      continue;
    }
    const SimDuration hop = delays.at(senders[j], receiver);
    if (hop == kUnreachable) {
      continue;
    }
    scratch->push_back(
        s + static_cast<SimDuration>(static_cast<double>(hop) * hop_scale));
  }
  return SelectQuorum(scratch, quorum);
}

bool Network::LossDrop(Region a, Region b) {
  // Shared fault stream and loss counter; loss schedules force clients off
  // the sharded path (primary.cc), so only the owner or serial code lands
  // here.
  guard_.AssertAccess();
  const SimTime now = sim_->Now();
  for (const LossWindow& window : loss_windows_) {
    if (now < window.from || now >= window.to) {
      continue;
    }
    if (!window.all_pairs &&
        !((window.a == a && window.b == b) || (window.a == b && window.b == a))) {
      continue;
    }
    if (fault_rng_.NextBernoulli(window.rate)) {
      ++stats_.loss_drops;
      return true;
    }
  }
  return false;
}

}  // namespace diablo
