#include "src/net/deployment.h"

#include <stdexcept>

#include "src/support/strings.h"

namespace diablo {

std::vector<Region> AllRegions() {
  std::vector<Region> regions;
  regions.reserve(kRegionCount);
  for (int i = 0; i < kRegionCount; ++i) {
    regions.push_back(static_cast<Region>(i));
  }
  return regions;
}

DeploymentConfig GetDeployment(std::string_view name) {
  const std::string key = ToLower(name);
  // Machine classes: c5.9xlarge = 36 vCPU / 72 GiB, c5.xlarge = 4 / 8,
  // c5.2xlarge = 8 / 16 (Table 3 left).
  if (key == "datacenter") {
    return DeploymentConfig{"datacenter", 10, MachineSpec{36, 72}, {Region::kOhio}};
  }
  if (key == "testnet") {
    return DeploymentConfig{"testnet", 10, MachineSpec{4, 8}, {Region::kOhio}};
  }
  if (key == "devnet") {
    return DeploymentConfig{"devnet", 10, MachineSpec{4, 8}, AllRegions()};
  }
  if (key == "community") {
    return DeploymentConfig{"community", 200, MachineSpec{4, 8}, AllRegions()};
  }
  if (key == "consortium") {
    return DeploymentConfig{"consortium", 200, MachineSpec{8, 16}, AllRegions()};
  }
  // "xl-<count>": the fig3-XL open-membership scale (1k–100k validators on
  // commodity machines, spread over all regions).
  if (key.rfind("xl-", 0) == 0) {
    int64_t count = 0;
    if (ParseInt64(std::string_view(key).substr(3), &count) && count > 0 &&
        count <= 1000000) {
      return DeploymentConfig{key, static_cast<int>(count), MachineSpec{4, 8},
                              AllRegions()};
    }
  }
  throw std::invalid_argument("unknown deployment: " + std::string(name));
}

std::vector<DeploymentConfig> AllDeployments() {
  return {GetDeployment("datacenter"), GetDeployment("testnet"), GetDeployment("devnet"),
          GetDeployment("community"), GetDeployment("consortium")};
}

}  // namespace diablo
