// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator draws from an explicitly seeded
// Rng so that a run is reproducible bit-for-bit from its seed. The generator
// is xoshiro256** seeded through splitmix64, which is fast, has a 256-bit
// state and passes BigCrush; <random> engines are avoided because their
// distributions are not portable across standard library implementations.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <array>
#include <cstdint>

namespace diablo {

// splitmix64 step; used standalone for cheap stateless hashing-style draws.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256** generator with explicit seeding and forkability.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on the full 64-bit range.
  uint64_t NextU64();

  // Uniform integer in [0, bound), bound > 0. Uses Lemire's method (no modulo bias).
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive, lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Exponentially distributed double with the given mean (> 0).
  double NextExponential(double mean);

  // Poisson-distributed count with the given mean (>= 0). Uses Knuth's method
  // for small means and a normal approximation above 64 to stay O(1)-ish.
  uint64_t NextPoisson(double mean);

  // Normally distributed double (Box-Muller, one value per call).
  double NextGaussian(double mean, double stddev);

  // True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // A new independent generator derived from this one; used to give each
  // simulated component its own stream so event reordering never perturbs
  // another component's draws.
  Rng Fork();

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace diablo

#endif  // SRC_SUPPORT_RNG_H_
