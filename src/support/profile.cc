#include "src/support/profile.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <inttypes.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace diablo::profile {
namespace {

std::atomic<uint64_t> g_events{0};
std::atomic<uint64_t> g_sends{0};
std::atomic<uint64_t> g_vote_rounds{0};
std::atomic<uint64_t> g_vm_ops{0};
std::atomic<int64_t> g_arena_live{0};
std::atomic<int64_t> g_arena_hwm{0};
std::atomic<uint64_t> g_window_barriers{0};
std::atomic<uint64_t> g_worker_events[kMaxProfiledWorkers]{};
std::atomic<uint64_t> g_serial_loop_events{0};
std::atomic<uint64_t> g_window_hist[kWindowHistBuckets]{};

// detlint: allow(D2, profiling layer: wall time feeds only the stderr summary, never simulation state)
const std::chrono::steady_clock::time_point g_start = std::chrono::steady_clock::now();

void PrintSummary() {
  const double wall =
      // detlint: allow(D2, profiling layer: wall time feeds only the stderr summary, never simulation state)
      std::chrono::duration<double>(std::chrono::steady_clock::now() - g_start).count();
  std::fprintf(stderr,
               "[profile] events=%" PRIu64 " net_sends=%" PRIu64 " vote_rounds=%" PRIu64
               " vm_ops=%" PRIu64 " wall=%.2fs rss_peak=%" PRId64 "B arena_hwm=%" PRId64
               "B\n",
               g_events.load(std::memory_order_relaxed),
               g_sends.load(std::memory_order_relaxed),
               g_vote_rounds.load(std::memory_order_relaxed),
               g_vm_ops.load(std::memory_order_relaxed), wall, PeakRssBytes(),
               g_arena_hwm.load(std::memory_order_relaxed));
  const uint64_t barriers = g_window_barriers.load(std::memory_order_relaxed);
  if (barriers > 0) {
    std::fprintf(stderr, "[profile] window_barriers=%" PRIu64 " worker_events=",
                 barriers);
    const char* sep = "";
    for (int w = 0; w < kMaxProfiledWorkers; ++w) {
      const uint64_t n = g_worker_events[w].load(std::memory_order_relaxed);
      if (n == 0) {
        continue;
      }
      std::fprintf(stderr, "%s%d:%" PRIu64, sep, w, n);
      sep = ",";
    }
    std::fprintf(stderr, "\n");
    // Window occupancy: how much of the windowed runs' work stayed on the
    // serial loop (events that break windows) versus inside parallel
    // windows, plus the events-per-window histogram. Serial residency is the
    // shard-balance regression signal: it bounds the multicore speedup.
    const uint64_t serial = g_serial_loop_events.load(std::memory_order_relaxed);
    uint64_t windowed = 0;
    for (int w = 0; w < kMaxProfiledWorkers; ++w) {
      windowed += g_worker_events[w].load(std::memory_order_relaxed);
    }
    const uint64_t total = serial + windowed;
    std::fprintf(stderr,
                 "[profile] serial_loop_events=%" PRIu64 " windowed_events=%" PRIu64
                 " serial_residency=%.1f%%\n",
                 serial, windowed,
                 total > 0 ? 100.0 * static_cast<double>(serial) /
                                 static_cast<double>(total)
                           : 0.0);
    std::fprintf(stderr, "[profile] events_per_window_hist=");
    const char* hsep = "";
    for (int b = 0; b < kWindowHistBuckets; ++b) {
      const uint64_t n = g_window_hist[b].load(std::memory_order_relaxed);
      if (n == 0) {
        continue;
      }
      // Bucket b covers window sizes in [2^b, 2^(b+1)); the last bucket is
      // open-ended.
      std::fprintf(stderr, "%s[%llu%s:%" PRIu64 "]", hsep,
                   static_cast<unsigned long long>(1ULL << b),
                   b + 1 < kWindowHistBuckets ? "" : "+", n);
      hsep = " ";
    }
    std::fprintf(stderr, "\n");
  }
}

bool InitEnabled() {
  const char* env = std::getenv("DIABLO_PROFILE");
  const bool on = env != nullptr && std::strcmp(env, "1") == 0;
  if (on) {
    std::atexit(PrintSummary);
  }
  return on;
}

const bool g_enabled = InitEnabled();

}  // namespace

bool Enabled() { return g_enabled; }

void AddEvents(uint64_t n) { g_events.fetch_add(n, std::memory_order_relaxed); }
void AddSends(uint64_t n) { g_sends.fetch_add(n, std::memory_order_relaxed); }
// detlint: allow(D7, stderr-only profiling counter: relaxed atomic read once at process exit, never during a run, so it cannot perturb simulation state)
void CountVoteRound() { g_vote_rounds.fetch_add(1, std::memory_order_relaxed); }
void AddVmOps(uint64_t n) { g_vm_ops.fetch_add(n, std::memory_order_relaxed); }

void AddWindowBarriers(uint64_t n) {
  g_window_barriers.fetch_add(n, std::memory_order_relaxed);
}

void AddWorkerEvents(int worker, uint64_t n) {
  if (worker < 0) {
    worker = 0;
  }
  if (worker >= kMaxProfiledWorkers) {
    worker = kMaxProfiledWorkers - 1;
  }
  g_worker_events[worker].fetch_add(n, std::memory_order_relaxed);
}

void AddSerialLoopEvents(uint64_t n) {
  g_serial_loop_events.fetch_add(n, std::memory_order_relaxed);
}

void AddWindowHistogram(const uint64_t* buckets, int count) {
  if (count > kWindowHistBuckets) {
    count = kWindowHistBuckets;
  }
  for (int b = 0; b < count; ++b) {
    if (buckets[b] != 0) {
      g_window_hist[b].fetch_add(buckets[b], std::memory_order_relaxed);
    }
  }
}

uint64_t SerialLoopEvents() {
  return g_serial_loop_events.load(std::memory_order_relaxed);
}

uint64_t WindowedWorkerEvents() {
  uint64_t total = 0;
  for (int w = 0; w < kMaxProfiledWorkers; ++w) {
    total += g_worker_events[w].load(std::memory_order_relaxed);
  }
  return total;
}

void AddArenaBytes(int64_t delta) {
  const int64_t live =
      g_arena_live.fetch_add(delta, std::memory_order_relaxed) + delta;
  int64_t hwm = g_arena_hwm.load(std::memory_order_relaxed);
  while (live > hwm && !g_arena_hwm.compare_exchange_weak(
                           hwm, live, std::memory_order_relaxed)) {
  }
}

int64_t ArenaHighWater() { return g_arena_hwm.load(std::memory_order_relaxed); }

int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
  }
#endif
  return 0;
}

}  // namespace diablo::profile
