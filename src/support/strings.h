// Small string helpers shared by the config parser, the assembler and the
// report printers. GCC 12 lacks std::format, so printf-style StrFormat fills
// the gap.
#ifndef SRC_SUPPORT_STRINGS_H_
#define SRC_SUPPORT_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace diablo {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Removes leading and trailing whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on runs of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Strict integer / double parsing. Returns false on any trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

// Lowercases ASCII.
std::string ToLower(std::string_view s);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace diablo

#endif  // SRC_SUPPORT_STRINGS_H_
