// Checked-build shard-ownership tracking: the dynamic counterpart of
// detlint's D7/D8 call-graph rules.
//
// The windowed parallel scheduler (src/sim/simulation.cc) executes sharded
// events concurrently inside a time window; correctness rests on every
// mutable structure being touched by exactly one shard during a window (or
// only by serial/barrier code). detlint proves what it can see statically;
// this module asserts the same invariant at runtime on the accesses that
// actually happen.
//
// Model: the scheduler brackets each windowed event with EnterEvent(shard) /
// ExitEvent() on the executing thread. Structures that are owned for the
// duration of a run — the chain context and its mempool/ledger/stats, the
// network's shared stream and counters — carry a ShardOwner bound to the
// owning shard when sharding is configured. ShardOwner::AssertAccess()
// allows the access when
//   - the owner is unbound (sharding not configured for this run), or
//   - the current thread is in serial/barrier context (no windowed event in
//     flight — fault publication, report building, setup), or
//   - the current event's shard equals the owner shard.
// Ownership is compared shard-to-shard, not worker-to-worker, so a binding
// is valid at every DIABLO_CELL_WORKERS count at once.
//
// Contract (same as check.h): the tracker never draws from an Rng, never
// touches stdout, and never mutates simulation state — a checked run's
// report is byte-identical to an unchecked one (locked by configs_test's
// golden-report-hash case). A violation prints the structure, owner and
// offending shard to stderr and aborts. Everything here compiles to nothing
// without -DDIABLO_CHECKED=ON.
#ifndef SRC_SUPPORT_SHARD_GUARD_H_
#define SRC_SUPPORT_SHARD_GUARD_H_

#include <cstdint>

namespace diablo::shard_guard {

// Sentinel for "no windowed event in flight" / "no owner bound"; matches
// kSerialShard in src/sim/event_queue.h. Binding a ShardOwner *to* this
// value is meaningful: it declares the structure serial-only, so any access
// from inside a windowed event is a violation.
inline constexpr uint32_t kUnowned = 0xffffffffu;

#if defined(DIABLO_CHECKED) && DIABLO_CHECKED

// Thread-local window context, maintained by Simulation::ExecuteSlice /
// ExecuteAllInline around each windowed event. Serial-loop events never
// call these, so serial context is simply "no event entered".
void EnterEvent(uint32_t shard);
void ExitEvent();
uint32_t CurrentShard();

[[noreturn]] void AccessViolation(const char* what, uint32_t owner,
                                  uint32_t current);

class ShardOwner {
 public:
  void Bind(uint32_t shard, const char* what) {
    bound_ = true;
    owner_ = shard;
    what_ = what;
  }
  void Unbind() { bound_ = false; }

  void AssertAccess() const {
    if (!bound_) {
      return;
    }
    const uint32_t current = CurrentShard();
    if (current == kUnowned || current == owner_) {
      return;
    }
    AccessViolation(what_, owner_, current);
  }

 private:
  bool bound_ = false;
  uint32_t owner_ = kUnowned;
  const char* what_ = "";
};

#else

inline void EnterEvent(uint32_t) {}
inline void ExitEvent() {}
inline uint32_t CurrentShard() { return kUnowned; }

class ShardOwner {
 public:
  void Bind(uint32_t, const char*) {}
  void Unbind() {}
  void AssertAccess() const {}
};

#endif

}  // namespace diablo::shard_guard

#endif  // SRC_SUPPORT_SHARD_GUARD_H_
