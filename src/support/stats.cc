#include "src/support/stats.h"

#include <algorithm>
#include <cmath>

namespace diablo {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

const std::vector<double>& SampleSet::sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return samples_;
}

double SampleSet::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::Min() const { return samples_.empty() ? 0.0 : sorted().front(); }
double SampleSet::Max() const { return samples_.empty() ? 0.0 : sorted().back(); }

double SampleSet::Percentile(double q) const {
  const auto& s = sorted();
  if (s.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(s.size())));
  return s[rank == 0 ? 0 : rank - 1];
}

double SampleSet::CdfAt(double x) const {
  const auto& s = sorted();
  if (s.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(it - s.begin()) / static_cast<double>(s.size());
}

std::vector<std::pair<double, double>> SampleSet::CdfSeries(size_t points) const {
  std::vector<std::pair<double, double>> series;
  if (samples_.empty() || points == 0) {
    return series;
  }
  const double lo = Min();
  const double hi = Max();
  const double step = points > 1 ? (hi - lo) / static_cast<double>(points - 1) : 0.0;
  series.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    series.emplace_back(x, CdfAt(x));
  }
  return series;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {}

void Histogram::Add(double x) {
  double idx = (x - lo_) / width_;
  size_t bucket = 0;
  if (idx >= static_cast<double>(counts_.size())) {
    bucket = counts_.size() - 1;
  } else if (idx > 0.0) {
    bucket = static_cast<size_t>(idx);
  }
  ++counts_[bucket];
  ++total_;
}

double Histogram::BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

void TimeSeries::Add(double seconds, double value) {
  if (seconds < 0.0) {
    seconds = 0.0;
  }
  const size_t bucket = static_cast<size_t>(seconds);
  if (bucket >= sums_.size()) {
    sums_.resize(bucket + 1, 0.0);
    counts_.resize(bucket + 1, 0);
  }
  sums_[bucket] += value;
  ++counts_[bucket];
}

double TimeSeries::SumAt(size_t second) const {
  return second < sums_.size() ? sums_[second] : 0.0;
}

uint64_t TimeSeries::CountAt(size_t second) const {
  return second < counts_.size() ? counts_[second] : 0;
}

double TimeSeries::MeanAt(size_t second) const {
  const uint64_t n = CountAt(second);
  return n == 0 ? 0.0 : SumAt(second) / static_cast<double>(n);
}

double TimeSeries::TotalSum() const {
  double sum = 0.0;
  for (double s : sums_) {
    sum += s;
  }
  return sum;
}

uint64_t TimeSeries::TotalCount() const {
  uint64_t n = 0;
  for (uint64_t c : counts_) {
    n += c;
  }
  return n;
}

std::string AsciiBar(double value, double max_value, int width) {
  if (max_value <= 0.0 || value < 0.0 || width <= 0) {
    return std::string();
  }
  const int filled = static_cast<int>(
      std::round(std::min(value / max_value, 1.0) * width));
  std::string bar(static_cast<size_t>(filled), '#');
  bar.append(static_cast<size_t>(width - filled), ' ');
  return bar;
}

}  // namespace diablo
