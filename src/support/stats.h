// Statistics primitives used by the result aggregator and the benches:
// running moments, exact percentiles/CDFs over stored samples, fixed-width
// histograms and per-second time series.
#ifndef SRC_SUPPORT_STATS_H_
#define SRC_SUPPORT_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace diablo {

// Streaming mean/variance/min/max (Welford). O(1) memory.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores samples for exact order statistics. Sorting is deferred and cached.
class SampleSet {
 public:
  void Add(double x);
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  // q in [0, 1]; nearest-rank percentile. Returns 0 for an empty set.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }

  // Cumulative distribution: fraction of samples <= x.
  double CdfAt(double x) const;

  // Evaluates the CDF at `points` evenly spaced values between min and max,
  // returning (value, fraction<=value) pairs — the series behind Fig. 6.
  std::vector<std::pair<double, double>> CdfSeries(size_t points) const;

  const std::vector<double>& sorted() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-bucket histogram over [lo, hi); out-of-range values clamp to the
// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  uint64_t BucketCount(size_t i) const { return counts_[i]; }
  size_t buckets() const { return counts_.size(); }
  double BucketLow(size_t i) const;
  uint64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// Per-second buckets of a quantity over the duration of a run, e.g. the
// committed-transactions-per-second series behind throughput plots.
class TimeSeries {
 public:
  // Adds `value` at time `seconds` since run start (fractional allowed).
  void Add(double seconds, double value);

  // Number of buckets (last populated second + 1).
  size_t size() const { return sums_.size(); }
  double SumAt(size_t second) const;
  uint64_t CountAt(size_t second) const;
  double MeanAt(size_t second) const;

  double TotalSum() const;
  uint64_t TotalCount() const;

 private:
  std::vector<double> sums_;
  std::vector<uint64_t> counts_;
};

// Renders a crude fixed-width ASCII bar, used by the bench binaries to echo
// the paper's bar charts in a terminal.
std::string AsciiBar(double value, double max_value, int width);

}  // namespace diablo

#endif  // SRC_SUPPORT_STATS_H_
