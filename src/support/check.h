// Checked-build invariant assertions: the dynamic counterpart of detlint.
//
// Configuring with -DDIABLO_CHECKED=ON compiles consistency checks into the
// sim/chain/net hot paths — event pop monotonicity, mempool SoA table
// agreement, block (tx_begin, tx_count) ranges, windowed order-statistic
// results cross-checked against nth_element, ledger header continuity. The
// checks give detlint's hazard classes runtime teeth: a rule the lint can
// only pattern-match (say, a reduction order silently changing) trips here
// the moment it produces a wrong value.
//
// Contract: checks never draw from an Rng, never touch stdout, and never
// mutate simulation state, so a checked run's output is byte-identical to an
// unchecked one (locked by configs_test's golden-report-hash case). A failed
// check prints the site and message to stderr and aborts.
//
// DIABLO_CHECK(cond, msg)      assert `cond`; compiled out when unchecked.
// DIABLO_CHECKED_ONLY(...)     splice tokens (members, statements) only into
//                              checked builds; use for check bookkeeping.
// kCheckedBuild                constexpr flag for tests and cadence gates.
#ifndef SRC_SUPPORT_CHECK_H_
#define SRC_SUPPORT_CHECK_H_

namespace diablo {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* msg);

#if defined(DIABLO_CHECKED) && DIABLO_CHECKED
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

}  // namespace diablo

#if defined(DIABLO_CHECKED) && DIABLO_CHECKED
#define DIABLO_CHECK(cond, msg)                                  \
  do {                                                           \
    if (!(cond)) {                                               \
      ::diablo::CheckFailed(__FILE__, __LINE__, #cond, (msg));   \
    }                                                            \
  } while (0)
#define DIABLO_CHECKED_ONLY(...) __VA_ARGS__
#else
#define DIABLO_CHECK(cond, msg) \
  do {                          \
  } while (0)
#define DIABLO_CHECKED_ONLY(...)
#endif

#endif  // SRC_SUPPORT_CHECK_H_
