#include "src/support/log.h"

#include <atomic>
#include <cstdio>

namespace diablo {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kError)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace diablo
