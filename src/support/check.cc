#include "src/support/check.h"

#include <cstdio>
#include <cstdlib>

namespace diablo {

void CheckFailed(const char* file, int line, const char* expr, const char* msg) {
  // stderr, never stdout: a failing run may be mid-report, and the byte
  // identity of whatever already reached stdout still matters for triage.
  std::fprintf(stderr, "DIABLO_CHECK failed at %s:%d: %s — %s\n", file, line, expr,
               msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace diablo
