#include "src/support/shard_guard.h"

#if defined(DIABLO_CHECKED) && DIABLO_CHECKED

#include <cstdio>
#include <cstdlib>

namespace diablo::shard_guard {
namespace {

thread_local uint32_t tls_shard = kUnowned;

}  // namespace

void EnterEvent(uint32_t shard) { tls_shard = shard; }
void ExitEvent() { tls_shard = kUnowned; }
uint32_t CurrentShard() { return tls_shard; }

void AccessViolation(const char* what, uint32_t owner, uint32_t current) {
  if (owner == kUnowned) {
    std::fprintf(stderr,
                 "[shard-guard] %s is serial-only but was accessed from "
                 "shard %u inside a parallel window\n",
                 what, current);
  } else {
    std::fprintf(stderr,
                 "[shard-guard] %s is owned by shard %u but was accessed "
                 "from shard %u inside a parallel window\n",
                 what, owner, current);
  }
  std::abort();
}

}  // namespace diablo::shard_guard

#endif  // DIABLO_CHECKED
