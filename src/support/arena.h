// Monotonic bump allocator for per-block scratch data.
//
// Block assembly produces short-lived batches (expired-transaction lists,
// per-block scratch) whose lifetime ends when the block is sealed. An Arena
// hands out raw memory with pointer arithmetic and reclaims everything at
// once with Reset(), which keeps the capacity: after the first block of a
// run, steady-state block production performs zero heap allocations.
#ifndef SRC_SUPPORT_ARENA_H_
#define SRC_SUPPORT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/support/profile.h"

namespace diablo {

class Arena {
 public:
  explicit Arena(size_t initial_bytes = 1024) {
    chunks_.push_back(MakeChunk(initial_bytes));
    profile::AddArenaBytes(static_cast<int64_t>(chunks_.back().size));
  }

  ~Arena() { profile::AddArenaBytes(-static_cast<int64_t>(capacity())); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(size_t bytes, size_t alignment) {
    size_t aligned = AlignUp(offset_, alignment);
    if (aligned + bytes > chunks_[current_].size) {
      AddChunk(bytes + alignment);
      aligned = AlignUp(offset_, alignment);
    }
    void* p = chunks_[current_].data.get() + aligned;
    offset_ = aligned + bytes;
    return p;
  }

  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "the arena never runs destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  // Reclaims every allocation at once. If the arena grew past its first
  // chunk, the chunks coalesce into a single one of the total size, so a
  // warmed-up arena serves any same-shaped workload from one chunk with no
  // further heap traffic.
  void Reset() {
    if (chunks_.size() > 1) {
      size_t total = 0;
      for (const Chunk& chunk : chunks_) {
        total += chunk.size;
      }
      chunks_.clear();
      chunks_.push_back(MakeChunk(total));
    }
    current_ = 0;
    offset_ = 0;
  }

  // Total bytes owned (not bytes in use); for tests and sizing decisions.
  size_t capacity() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) {
      total += chunk.size;
    }
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  static size_t AlignUp(size_t offset, size_t alignment) {
    return (offset + alignment - 1) & ~(alignment - 1);
  }

  static Chunk MakeChunk(size_t bytes) {
    if (bytes < 64) {
      bytes = 64;
    }
    // operator new[] guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__; the arena
    // only serves fundamental alignments.
    return Chunk{std::make_unique<std::byte[]>(bytes), bytes};
  }

  void AddChunk(size_t min_bytes) {
    size_t grown = chunks_.back().size * 2;
    if (grown < min_bytes) {
      grown = min_bytes;
    }
    chunks_.push_back(MakeChunk(grown));
    profile::AddArenaBytes(static_cast<int64_t>(chunks_.back().size));
    current_ = chunks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Chunk> chunks_;
  size_t current_ = 0;  // index of the chunk being bumped
  size_t offset_ = 0;   // bytes used in the current chunk
};

// A push_back-able view over arena memory for trivially copyable elements.
// Growth allocates a doubled array from the arena and memcpys over; the old
// array is simply abandoned until the next Reset. No destructors ever run.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector relocates with memcpy");

 public:
  explicit ArenaVector(Arena* arena) : arena_(arena) {}

  void push_back(const T& value) {
    if (size_ == capacity_) {
      Grow();
    }
    data_[size_++] = value;
  }

  void clear() { size_ = 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Grow() {
    const size_t grown = capacity_ == 0 ? 16 : capacity_ * 2;
    T* bigger = arena_->AllocateArray<T>(grown);
    if (size_ > 0) {
      std::memcpy(bigger, data_, size_ * sizeof(T));
    }
    data_ = bigger;
    capacity_ = grown;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace diablo

#endif  // SRC_SUPPORT_ARENA_H_
