#include "src/support/thread_pool.h"

#include <algorithm>
#include <utility>

namespace diablo {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(threads, 1);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task captures any exception into the future.
    task();
  }
}

int ThreadPool::HardwareConcurrency() {
  const unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace diablo
