// Simulated-time types. The whole simulation runs on a single signed 64-bit
// nanosecond clock; helpers below keep unit conversions explicit at call sites.
#ifndef SRC_SUPPORT_TIME_H_
#define SRC_SUPPORT_TIME_H_

#include <bit>
#include <cstdint>

namespace diablo {

// Simulated time and durations, in nanoseconds since the start of a run.
using SimTime = int64_t;
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration Nanoseconds(int64_t n) { return n; }
constexpr SimDuration Microseconds(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Milliseconds(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }

// Fractional constructors for config values such as "1.9 s block period".
constexpr SimDuration MillisecondsF(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}
constexpr SimDuration SecondsF(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMilliseconds(SimDuration d) { return static_cast<double>(d) / kMillisecond; }

// `base << exponent` with the exponent clamped so the shift is always
// defined and the result saturates instead of overflowing. The saturation
// value is kept a quarter of the int64 range so callers can still add it to
// a current timestamp without wrapping. Used for retry/view-change backoff
// timers, where a pathological configuration (huge base timeout) must stall
// the protocol, not corrupt the clock.
constexpr SimDuration SaturatingBackoff(SimDuration base, int exponent) {
  constexpr SimDuration kCeiling = INT64_MAX / 4;
  if (base <= 0) {
    return 0;
  }
  if (exponent <= 0) {
    return base;
  }
  const int base_bits = 64 - std::countl_zero(static_cast<uint64_t>(base));
  // kCeiling occupies 61 bits; any result needing more saturates.
  if (base_bits + exponent > 61) {
    return kCeiling;
  }
  return base << exponent;
}

}  // namespace diablo

#endif  // SRC_SUPPORT_TIME_H_
