#include "src/support/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace diablo {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
    }
    const size_t start = i;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) == 0) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  const std::string buf(TrimView(s));
  if (buf.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  const std::string buf(TrimView(s));
  if (buf.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

}  // namespace diablo
