// Lightweight per-subsystem counters behind DIABLO_PROFILE=1.
//
// Every binary accumulates events executed, network sends, vote rounds and VM
// ops into process-wide relaxed atomics; when the environment variable
// DIABLO_PROFILE=1 is set, a summary line is printed to stderr at process
// exit. stdout is never touched, so profiled runs stay byte-identical to
// unprofiled ones. Counters are fed at cold points (simulation/network
// destructors, once per vote round, once per contract execution) — the hot
// loops themselves carry no instrumentation.
#ifndef SRC_SUPPORT_PROFILE_H_
#define SRC_SUPPORT_PROFILE_H_

#include <cstdint>

namespace diablo::profile {

// True when DIABLO_PROFILE=1 was set at startup (read once).
bool Enabled();

void AddEvents(uint64_t n);
void AddSends(uint64_t n);
void CountVoteRound();
void AddVmOps(uint64_t n);

// Windowed parallel scheduler accounting: barriers crossed and events
// executed per cell worker (workers beyond kMaxProfiledWorkers fold into the
// last slot). Both land in the exit summary only when any barrier was
// crossed, so single-threaded runs keep the historical summary line.
inline constexpr int kMaxProfiledWorkers = 16;
void AddWindowBarriers(uint64_t n);
void AddWorkerEvents(int worker, uint64_t n);

// Window-occupancy accounting. Serial-loop events are the events a windowed
// run still executes on the single-threaded loop (they break windows, so
// they bound the achievable parallelism); the histogram buckets window batch
// sizes by floor(log2(size)) — bucket 0 holds single-event windows, the last
// bucket folds everything >= 2^(kWindowHistBuckets-1). Both are fed at cold
// points (the Simulation destructor) and always accumulate, so benchmarks
// can read occupancy deltas programmatically whether or not DIABLO_PROFILE
// is set; the stderr summary alone is gated on the environment variable.
inline constexpr int kWindowHistBuckets = 16;
void AddSerialLoopEvents(uint64_t n);
void AddWindowHistogram(const uint64_t* buckets, int count);

// Programmatic occupancy readbacks (process-wide totals so far): events run
// on the serial loop of windowed runs, and events run inside parallel
// windows (summed over workers). Serial residency is the ratio of the first
// to the sum.
uint64_t SerialLoopEvents();
uint64_t WindowedWorkerEvents();

// Arena memory accounting: arenas report chunk creation (positive delta) and
// destruction (negative); the high-water mark of live arena bytes lands in
// the exit summary so the fig3-XL memory claims are observable.
void AddArenaBytes(int64_t delta);
int64_t ArenaHighWater();

// Peak resident set size of this process in bytes (getrusage), 0 when the
// platform cannot report it.
int64_t PeakRssBytes();

}  // namespace diablo::profile

#endif  // SRC_SUPPORT_PROFILE_H_
