// Lightweight per-subsystem counters behind DIABLO_PROFILE=1.
//
// Every binary accumulates events executed, network sends, vote rounds and VM
// ops into process-wide relaxed atomics; when the environment variable
// DIABLO_PROFILE=1 is set, a summary line is printed to stderr at process
// exit. stdout is never touched, so profiled runs stay byte-identical to
// unprofiled ones. Counters are fed at cold points (simulation/network
// destructors, once per vote round, once per contract execution) — the hot
// loops themselves carry no instrumentation.
#ifndef SRC_SUPPORT_PROFILE_H_
#define SRC_SUPPORT_PROFILE_H_

#include <cstdint>

namespace diablo::profile {

// True when DIABLO_PROFILE=1 was set at startup (read once).
bool Enabled();

void AddEvents(uint64_t n);
void AddSends(uint64_t n);
void CountVoteRound();
void AddVmOps(uint64_t n);

// Windowed parallel scheduler accounting: barriers crossed and events
// executed per cell worker (workers beyond kMaxProfiledWorkers fold into the
// last slot). Both land in the exit summary only when any barrier was
// crossed, so single-threaded runs keep the historical summary line.
inline constexpr int kMaxProfiledWorkers = 16;
void AddWindowBarriers(uint64_t n);
void AddWorkerEvents(int worker, uint64_t n);

// Arena memory accounting: arenas report chunk creation (positive delta) and
// destruction (negative); the high-water mark of live arena bytes lands in
// the exit summary so the fig3-XL memory claims are observable.
void AddArenaBytes(int64_t delta);
int64_t ArenaHighWater();

// Peak resident set size of this process in bytes (getrusage), 0 when the
// platform cannot report it.
int64_t PeakRssBytes();

}  // namespace diablo::profile

#endif  // SRC_SUPPORT_PROFILE_H_
