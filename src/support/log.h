// Leveled logging to stderr, mirroring diablo's -v/-vv/-vvv verbosity flags.
// Logging is process-global and off by default so tests stay quiet.
#ifndef SRC_SUPPORT_LOG_H_
#define SRC_SUPPORT_LOG_H_

#include <string>

namespace diablo {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

// Sets the maximum level that is emitted. Defaults to kError.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits `message` at `level` if enabled, prefixed with the level tag.
void LogMessage(LogLevel level, const std::string& message);

}  // namespace diablo

#define DIABLO_LOG(level, msg)                                \
  do {                                                        \
    if (static_cast<int>(level) <=                            \
        static_cast<int>(::diablo::GetLogLevel())) {          \
      ::diablo::LogMessage((level), (msg));                   \
    }                                                         \
  } while (false)

#endif  // SRC_SUPPORT_LOG_H_
