// A fixed-size FIFO thread pool for running independent experiment cells.
//
// Deliberately work-stealing-free: tasks are dispatched from a single queue
// in submission order, so with one worker the execution order is exactly the
// submission order. Determinism of results never depends on the pool anyway —
// each task must own its state and RNG streams — but a predictable dispatch
// order keeps logs and failures reproducible.
#ifndef SRC_SUPPORT_THREAD_POOL_H_
#define SRC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace diablo {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains every pending task, then joins the workers.
  ~ThreadPool();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Enqueues `task`; the future reports completion and rethrows any
  // exception the task raised.
  std::future<void> Submit(std::function<void()> task);

  // std::thread::hardware_concurrency with a sane floor of 1.
  static int HardwareConcurrency();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace diablo

#endif  // SRC_SUPPORT_THREAD_POOL_H_
