#include "src/support/rng.h"

#include <cmath>

namespace diablo {
namespace {

constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's nearly-divisionless method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    uint64_t count = 0;
    double product = NextDouble();
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for workload
  // arrival counts where mean is in the hundreds or thousands.
  const double draw = NextGaussian(mean, std::sqrt(mean)) + 0.5;
  return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace diablo
