#include "src/chains/registry.h"

namespace diablo {

const std::vector<ClaimedPerformance>& ClaimedFigures() {
  // Table 1 of the paper: claimed versus observed conditions.
  static const std::vector<ClaimedPerformance>* const kClaims =
      new std::vector<ClaimedPerformance>{
          {"algorand", "1K-46K TPS", "2.5-4.5 s", "?", "testnet"},
          {"avalanche", "4.5K TPS", "2 s", "?", "datacenter"},
          {"solana", "200K TPS", "<1 s", "150 nodes", "datacenter"},
      };
  return *kClaims;
}

const ClaimedPerformance* FindClaim(std::string_view chain) {
  for (const ClaimedPerformance& claim : ClaimedFigures()) {
    if (claim.chain == chain) {
      return &claim;
    }
  }
  return nullptr;
}

}  // namespace diablo
