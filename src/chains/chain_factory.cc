#include "src/chains/chain_factory.h"

#include <stdexcept>

#include "src/consensus/algorand.h"
#include "src/consensus/avalanche.h"
#include "src/consensus/clique.h"
#include "src/consensus/dbft.h"
#include "src/consensus/hotstuff.h"
#include "src/consensus/ibft.h"
#include "src/consensus/raft.h"
#include "src/consensus/solana.h"

namespace diablo {
namespace {

std::unique_ptr<ConsensusEngine> MakeEngine(ChainContext* ctx) {
  const std::string& consensus = ctx->params().consensus_name;
  if (consensus == "Clique") {
    return std::make_unique<CliqueEngine>(ctx);
  }
  if (consensus == "IBFT" || consensus == "QBFT") {
    return std::make_unique<IbftEngine>(ctx);
  }
  if (consensus == "Raft") {
    return std::make_unique<RaftEngine>(ctx);
  }
  if (consensus == "DBFT") {
    return std::make_unique<DbftEngine>(ctx);
  }
  if (consensus == "HotStuff") {
    return std::make_unique<HotStuffEngine>(ctx);
  }
  if (consensus == "BA*") {
    return std::make_unique<AlgorandEngine>(ctx);
  }
  if (consensus == "Avalanche") {
    return std::make_unique<AvalancheEngine>(ctx);
  }
  if (consensus == "TowerBFT") {
    return std::make_unique<SolanaEngine>(ctx);
  }
  throw std::invalid_argument("unknown consensus: " + consensus);
}

}  // namespace

ChainInstance::ChainInstance(Simulation* sim, Network* net, DeploymentConfig deployment,
                             ChainParams params) {
  ctx_ = std::make_unique<ChainContext>(sim, net, std::move(deployment),
                                        std::move(params));
  engine_ = MakeEngine(ctx_.get());
}

std::unique_ptr<ChainInstance> BuildChain(std::string_view chain,
                                          const DeploymentConfig& deployment,
                                          Simulation* sim, Network* net) {
  return BuildChainFromParams(GetChainParams(chain), deployment, sim, net);
}

std::unique_ptr<ChainInstance> BuildChainFromParams(const ChainParams& params,
                                                    const DeploymentConfig& deployment,
                                                    Simulation* sim, Network* net) {
  return std::make_unique<ChainInstance>(sim, net, deployment, params);
}

}  // namespace diablo
