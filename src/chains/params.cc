#include "src/chains/params.h"

#include <stdexcept>

#include "src/consensus/dbft.h"
#include "src/support/strings.h"

namespace diablo {
namespace {

ChainParams AlgorandParams() {
  ChainParams p;
  p.name = "algorand";
  p.consensus_name = "BA*";
  p.property = "prob.";
  p.vm_name = "AVM";
  p.dapp_language = "PyTeal";
  p.dialect = VmDialect::kAvm;
  p.sig_scheme = SignatureScheme::kEd25519;  // Algorand uses Ed25519
  p.block_interval = Milliseconds(500);
  p.block_gas_limit = 2'500'000;       // calibrated: app-call capacity well below
                                       // payment capacity (§6.1's FIFA/Dota rows)
  p.max_block_bytes = 5'000'000;       // Algorand 5 MB blocks
  p.max_block_txs = 4000;              // calibrated: ~885 TPS ceiling at ~4.5 s rounds
  p.confirmation_depth = 0;            // no forks w.h.p. -> immediate finality (§5.2)
  p.mempool.global_cap = 4500;         // calibrated: Fig. 6 Apple plateau ~77%
  p.committee_expected = 60;           // committee-sized vote steps
  p.step_timeout = MillisecondsF(2200);  // BA* step timer λ; ~4.5 s rounds
  p.gas_per_sec_per_vcpu = 50e6;
  p.congestion_threshold = 0;
  p.ingress_capacity = 19000;          // calibrated: Fig. 4 throughput /1.45 at 10k TPS
  return p;
}

ChainParams AvalancheParams() {
  ChainParams p;
  p.name = "avalanche";
  p.consensus_name = "Avalanche";
  p.property = "prob.";
  p.vm_name = "geth";
  p.dapp_language = "Solidity";
  p.dialect = VmDialect::kGeth;
  p.sig_scheme = SignatureScheme::kEcdsa;  // the paper's fallback from RSA4096 (§5.2)
  p.block_interval = MillisecondsF(1900);  // ≥1.9 s between blocks (§5.2)
  p.block_gas_limit = 8'000'000;           // 8M gas per block (§5.2)
  p.max_block_txs = 2000;
  p.confirmation_depth = 0;                // decision time modelled explicitly
  p.mempool.global_cap = 9000;             // calibrated: Fig. 6 Apple ~90% committed
  p.sample_k = 20;                         // Snowball defaults
  p.beta = 12;
  p.alpha_fraction = 0.8;
  p.gas_per_sec_per_vcpu = 800e6;
  p.congestion_threshold = 0;              // immune to overload (§6.3)
  return p;
}

ChainParams DiemParams() {
  ChainParams p;
  p.name = "diem";
  p.consensus_name = "HotStuff";
  p.property = "det.";
  p.vm_name = "MoveVM";
  p.dapp_language = "Move";
  p.dialect = VmDialect::kMoveVm;
  p.sig_scheme = SignatureScheme::kEd25519;
  p.block_interval = Milliseconds(100);  // pipelined rounds; LAN rounds are fast
  p.block_gas_limit = 0;
  p.max_block_txs = 1000;
  p.confirmation_depth = 0;  // deterministic finality
  p.mempool.per_signer_cap = 100;  // 100 txs per signer in the pool (§5.2)
  p.mempool.ttl = Seconds(20);     // client expiration window (calibrated: Fig. 6)
  p.round_timeout = Seconds(10);
  p.proposal_overhead_per_pending_tx = Microseconds(5);  // calibrated
  p.gas_per_sec_per_vcpu = 50e6;
  p.congestion_threshold = 1200;   // calibrated: Fig. 4 collapse, Fig. 2 Dota ceiling
  return p;
}

ChainParams EthereumParams() {
  ChainParams p;
  p.name = "ethereum";
  p.consensus_name = "Clique";
  p.property = "eventual";
  p.vm_name = "geth";
  p.dapp_language = "Solidity";
  p.dialect = VmDialect::kGeth;
  p.sig_scheme = SignatureScheme::kEcdsa;
  p.block_interval = Seconds(5);       // PoA block period (private-net Clique)
  p.block_gas_limit = 600'000'000;     // private-net genesis raises the cap
  p.max_block_txs = 2000;
  p.confirmation_depth = 6;            // Clique forks -> wait for descendants
  p.mempool.global_cap = 5120;         // geth txpool default (4096 exec + 1024 queue)
  p.mempool.evict_on_full = true;      // geth replaces pooled txs when full
  p.gas_per_sec_per_vcpu = 800e6;
  p.congestion_threshold = 1200;       // calibrated: sub-percent commits at 10k TPS (§6.3)
  return p;
}

ChainParams QuorumParams() {
  ChainParams p;
  p.name = "quorum";
  p.consensus_name = "IBFT";
  p.property = "det.";
  p.vm_name = "geth";
  p.dapp_language = "Solidity";
  p.dialect = VmDialect::kGeth;
  p.sig_scheme = SignatureScheme::kEcdsa;
  p.block_interval = Seconds(1);
  p.block_gas_limit = 0;               // permissioned deployments lift the cap
  p.max_block_txs = 1024;              // calibrated: geth miner defaults
  p.confirmation_depth = 0;            // immediate finality (IBFT)
  p.mempool.global_cap = 0;            // IBFT never drops a client request (§6.5)
  p.round_timeout = Seconds(10);
  p.proposal_overhead_quadratic = Microseconds(100);  // calibrated: §6.3 collapse
                                                      // at ~200k pending
  p.gas_per_sec_per_vcpu = 800e6;
  p.congestion_threshold = 0;          // collapse comes from view changes instead
  return p;
}

ChainParams SolanaParams() {
  ChainParams p;
  p.name = "solana";
  p.consensus_name = "TowerBFT";
  p.property = "eventual";
  p.vm_name = "eBPF";
  p.dapp_language = "Solidity";  // via Solang, as the paper's Table 4 lists Solidity
  p.dialect = VmDialect::kEbpf;
  p.sig_scheme = SignatureScheme::kEd25519;
  p.slot_duration = Milliseconds(400);  // 400 ms slots (§5.2)
  p.leader_window_slots = 4;
  p.block_gas_limit = 3'600'000;        // calibrated: ~9000 TPS native ceiling
  p.max_block_bytes = 1'300'000;        // Turbine shred budget per slot
  p.max_block_txs = 4000;
  p.confirmation_depth = 30;            // 30 confirmations before final (§5.2)
  p.mempool.global_cap = 4800;          // calibrated: Fig. 6 Apple plateau ~52%
  p.mempool.ttl = Seconds(120);         // recent-blockhash expiry (§5.2)
  p.gas_per_sec_per_vcpu = 50e6;
  p.congestion_threshold = 300;         // calibrated: Fig. 4 degradation at 10k TPS
  return p;
}

}  // namespace

ChainParams GetChainParams(std::string_view chain) {
  const std::string key = ToLower(chain);
  if (key == "algorand") {
    return AlgorandParams();
  }
  if (key == "avalanche") {
    return AvalancheParams();
  }
  if (key == "diem") {
    return DiemParams();
  }
  if (key == "ethereum") {
    return EthereumParams();
  }
  if (key == "quorum") {
    return QuorumParams();
  }
  if (key == "solana") {
    return SolanaParams();
  }
  if (key == "redbelly") {
    // Extension chain (§6.6's Smart Red Belly reference); excluded from
    // AllChainNames() so the paper's six-chain benches stay faithful.
    return RedBellyParams();
  }
  throw std::invalid_argument("unknown blockchain: " + std::string(chain));
}

std::vector<ChainParams> AllChainParams() {
  std::vector<ChainParams> all;
  for (const std::string& name : AllChainNames()) {
    all.push_back(GetChainParams(name));
  }
  return all;
}

const std::vector<std::string>& AllChainNames() {
  static const std::vector<std::string>* const kNames = new std::vector<std::string>{
      "algorand", "avalanche", "diem", "quorum", "ethereum", "solana"};
  return *kNames;
}

}  // namespace diablo
