// Calibrated parameter sheets for the six evaluated blockchains (§5.2,
// Table 4). Every number is either taken from the paper / public protocol
// documentation (cited inline) or marked "calibrated" — tuned so the §6
// result shapes hold on this repository's simulators.
#ifndef SRC_CHAINS_PARAMS_H_
#define SRC_CHAINS_PARAMS_H_

#include <string_view>
#include <vector>

#include "src/chain/node.h"

namespace diablo {

// Names: "algorand", "avalanche", "diem", "ethereum", "quorum", "solana".
ChainParams GetChainParams(std::string_view chain);

// All six, in the paper's Table 4 order.
std::vector<ChainParams> AllChainParams();

const std::vector<std::string>& AllChainNames();

}  // namespace diablo

#endif  // SRC_CHAINS_PARAMS_H_
