// Assembles a runnable blockchain: a ChainContext plus the consensus engine
// matching its parameter sheet.
#ifndef SRC_CHAINS_CHAIN_FACTORY_H_
#define SRC_CHAINS_CHAIN_FACTORY_H_

#include <memory>
#include <string_view>

#include "src/chain/node.h"
#include "src/chains/params.h"

namespace diablo {

class ChainInstance {
 public:
  ChainInstance(Simulation* sim, Network* net, DeploymentConfig deployment,
                ChainParams params);

  // Begins block production.
  void Start() { engine_->Start(); }

  // Engine-sharding pass-throughs for the windowed parallel runner: the
  // engine's reschedule floor gates eligibility (it must be at least the
  // window lookahead), and enabling routes the whole engine event chain —
  // plus the submission arrivals that feed its mempool — onto `shard`.
  SimDuration MinRescheduleDelay() const { return engine_->MinRescheduleDelay(); }
  void EnableEngineSharding(uint32_t shard) { ctx_->EnableEngineSharding(shard); }

  ChainContext& context() { return *ctx_; }
  const ChainParams& params() const { return ctx_->params(); }

 private:
  std::unique_ptr<ChainContext> ctx_;
  std::unique_ptr<ConsensusEngine> engine_;
};

// Builds the named chain (see AllChainNames()) on the given deployment.
std::unique_ptr<ChainInstance> BuildChain(std::string_view chain,
                                          const DeploymentConfig& deployment,
                                          Simulation* sim, Network* net);

// Builds a chain from a custom parameter sheet (used by the ablation benches
// and the custom-blockchain example).
std::unique_ptr<ChainInstance> BuildChainFromParams(const ChainParams& params,
                                                    const DeploymentConfig& deployment,
                                                    Simulation* sim, Network* net);

}  // namespace diablo

#endif  // SRC_CHAINS_CHAIN_FACTORY_H_
