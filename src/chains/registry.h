// Published metadata about the evaluated blockchains: Table 4's
// characteristics come from the ChainParams sheets; Table 1's claimed
// performance figures are recorded here with their paper citations.
#ifndef SRC_CHAINS_REGISTRY_H_
#define SRC_CHAINS_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

namespace diablo {

// A publicly claimed performance figure (Table 1, left).
struct ClaimedPerformance {
  std::string chain;
  std::string claimed_throughput;  // as published, e.g. "1K-46K TPS"
  std::string claimed_latency;
  std::string claimed_setup;       // "?" when unspecified — the paper's point
  // Best configuration the paper observed (Table 1, right, "setup" column).
  std::string observed_setup;
};

// Table 1 rows.
const std::vector<ClaimedPerformance>& ClaimedFigures();

// Returns claimed row for a chain or nullptr.
const ClaimedPerformance* FindClaim(std::string_view chain);

}  // namespace diablo

#endif  // SRC_CHAINS_REGISTRY_H_
