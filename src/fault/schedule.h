// Declarative fault schedules: the set of failures a run injects, as pure
// data. A schedule is built programmatically (FaultScheduleBuilder) or
// parsed from the `faults:` section of a workload YAML file, validated
// once, and then executed by the FaultInjector as ordinary simulation
// events — so a faulty run is exactly as deterministic as a healthy one.
//
// The fault model covers the §6.3-style scenarios: node crashes with
// optional restart, network partitions (explicit node sets or whole
// regions) with heal, message-loss and delay-spike windows on the network,
// and stragglers (a node whose CPU runs at a fraction of its rated speed).
#ifndef SRC_FAULT_SCHEDULE_H_
#define SRC_FAULT_SCHEDULE_H_

#include <string>
#include <vector>

#include "src/net/region.h"
#include "src/support/time.h"

namespace diablo {

enum class FaultKind : uint8_t {
  kCrash = 0,    // node stops participating; optional restart
  kPartition,    // a set of nodes (or a region) is cut off, then healed
  kLoss,         // messages drop with probability `rate` inside the window
  kDelaySpike,   // extra one-way delay inside the window
  kStraggler,    // a node's CPU runs at cpu_factor of its rated speed
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  SimTime at = 0;        // fault onset
  SimTime until = -1;    // restart / heal / window end; -1 = never heals
  int node = -1;         // crash, straggler
  std::vector<int> nodes;  // partition by explicit node set
  bool by_region = false;  // partition scoped to a whole region
  Region region = Region::kOhio;
  bool region_pair = false;  // loss/delay scoped to one region pair
  Region pair_a = Region::kOhio;
  Region pair_b = Region::kOhio;
  double loss_rate = 0;        // kLoss: drop probability in [0, 1]
  SimDuration extra_delay = 0; // kDelaySpike
  double cpu_factor = 1;       // kStraggler: fraction of rated speed, (0, 1]
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  // Structural validation: well-formed times, rates and factors in range,
  // no overlapping windows of the same kind on the same scope. When
  // `node_count` >= 0, node references are also range-checked against the
  // deployment ("unknown host"). Returns false and fills *error on the
  // first violation.
  bool Validate(int node_count, std::string* error) const;

  // Heal instants (restart / partition heal / window end), sorted
  // ascending: the moments time-to-recovery is measured from.
  std::vector<SimTime> HealTimes() const;
};

// Fluent construction for tests and experiment binaries:
//   FaultSchedule s = FaultScheduleBuilder()
//       .Crash(0, Seconds(10), Seconds(30))
//       .Partition({1, 2, 3}, Seconds(10), Seconds(40))
//       .Loss(0.05, Seconds(10), Seconds(40))
//       .Build();
class FaultScheduleBuilder {
 public:
  // Crash `node` at `at`; restart < 0 means it never comes back.
  FaultScheduleBuilder& Crash(int node, SimTime at, SimTime restart = -1);
  FaultScheduleBuilder& Partition(std::vector<int> nodes, SimTime from,
                                  SimTime to = -1);
  FaultScheduleBuilder& PartitionRegion(Region region, SimTime from,
                                        SimTime to = -1);
  // Uniform loss on every link.
  FaultScheduleBuilder& Loss(double rate, SimTime from, SimTime to = -1);
  FaultScheduleBuilder& LossBetween(Region a, Region b, double rate,
                                    SimTime from, SimTime to = -1);
  // Extra one-way delay on every link.
  FaultScheduleBuilder& DelaySpike(SimDuration extra, SimTime from,
                                   SimTime to = -1);
  FaultScheduleBuilder& DelaySpikeBetween(Region a, Region b, SimDuration extra,
                                          SimTime from, SimTime to = -1);
  FaultScheduleBuilder& Straggler(int node, double cpu_factor, SimTime from,
                                  SimTime to = -1);

  FaultSchedule Build() { return std::move(schedule_); }

 private:
  FaultSchedule schedule_;
};

}  // namespace diablo

#endif  // SRC_FAULT_SCHEDULE_H_
