// Declarative fault schedules: the set of failures a run injects, as pure
// data. A schedule is built programmatically (FaultScheduleBuilder) or
// parsed from the `faults:` section of a workload YAML file, validated
// once, and then executed by the FaultInjector as ordinary simulation
// events — so a faulty run is exactly as deterministic as a healthy one.
//
// The fault model covers the §6.3-style scenarios: node crashes with
// optional restart, network partitions (explicit node sets or whole
// regions) with heal, message-loss and delay-spike windows on the network,
// and stragglers (a node whose CPU runs at a fraction of its rated speed).
//
// Beyond those honest failures, the schedule also declares *Byzantine*
// (malicious-validator) windows: equivocating leaders, double-voting, vote
// withholding, censorship of a signer set, and lazy proposers. A Byzantine
// event names its adversaries either explicitly (`nodes`) or as a fraction
// of the deployment (`fraction`), resolved deterministically by the
// injector; the consensus engines carry the matching detection and defense
// hooks (see docs/robustness.md).
#ifndef SRC_FAULT_SCHEDULE_H_
#define SRC_FAULT_SCHEDULE_H_

#include <string>
#include <vector>

#include "src/net/region.h"
#include "src/support/time.h"

namespace diablo {

enum class FaultKind : uint8_t {
  kCrash = 0,    // node stops participating; optional restart
  kPartition,    // a set of nodes (or a region) is cut off, then healed
  kLoss,         // messages drop with probability `rate` inside the window
  kDelaySpike,   // extra one-way delay inside the window
  kStraggler,    // a node's CPU runs at cpu_factor of its rated speed
  // --- Byzantine kinds: the scoped nodes act maliciously in the window ---
  kEquivocate,     // leaders send conflicting proposals for their round
  kDoubleVote,     // validators cast two votes per vote stage
  kWithholdVotes,  // validators never vote
  kCensor,         // proposers refuse transactions from a signer set
  kLazyProposer,   // proposers seal empty blocks
  kCount,          // sentinel — keep last; not a fault kind
};

const char* FaultKindName(FaultKind kind);

// Whether this kind models malicious (vs merely failing) validators.
bool IsByzantine(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  SimTime at = 0;        // fault onset
  SimTime until = -1;    // restart / heal / window end; -1 = never heals
  int node = -1;         // crash, straggler
  std::vector<int> nodes;  // partition by explicit node set
  bool by_region = false;  // partition scoped to a whole region
  Region region = Region::kOhio;
  bool region_pair = false;  // loss/delay scoped to one region pair
  Region pair_a = Region::kOhio;
  Region pair_b = Region::kOhio;
  double loss_rate = 0;        // kLoss: drop probability in [0, 1]
  SimDuration extra_delay = 0; // kDelaySpike
  double cpu_factor = 1;       // kStraggler: fraction of rated speed, (0, 1]
  // Byzantine kinds scope their adversaries either by explicit `nodes` or
  // by `fraction` of the deployment in (0, 1); exactly one must be given.
  double fraction = 0;
  std::vector<int> censored_signers;  // kCensor: signer ids to refuse
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  // Structural validation: well-formed times, rates and factors in range,
  // no overlapping windows of the same kind on the same scope. When
  // `node_count` >= 0, node references are also range-checked against the
  // deployment ("unknown host"). Returns false and fills *error on the
  // first violation.
  bool Validate(int node_count, std::string* error) const;

  // Heal instants (restart / partition heal / window end), sorted
  // ascending: the moments time-to-recovery is measured from.
  std::vector<SimTime> HealTimes() const;
};

// Fluent construction for tests and experiment binaries:
//   FaultSchedule s = FaultScheduleBuilder()
//       .Crash(0, Seconds(10), Seconds(30))
//       .Partition({1, 2, 3}, Seconds(10), Seconds(40))
//       .Loss(0.05, Seconds(10), Seconds(40))
//       .Build();
class FaultScheduleBuilder {
 public:
  // Crash `node` at `at`; restart < 0 means it never comes back.
  FaultScheduleBuilder& Crash(int node, SimTime at, SimTime restart = -1);
  FaultScheduleBuilder& Partition(std::vector<int> nodes, SimTime from,
                                  SimTime to = -1);
  FaultScheduleBuilder& PartitionRegion(Region region, SimTime from,
                                        SimTime to = -1);
  // Uniform loss on every link.
  FaultScheduleBuilder& Loss(double rate, SimTime from, SimTime to = -1);
  FaultScheduleBuilder& LossBetween(Region a, Region b, double rate,
                                    SimTime from, SimTime to = -1);
  // Extra one-way delay on every link.
  FaultScheduleBuilder& DelaySpike(SimDuration extra, SimTime from,
                                   SimTime to = -1);
  FaultScheduleBuilder& DelaySpikeBetween(Region a, Region b, SimDuration extra,
                                          SimTime from, SimTime to = -1);
  FaultScheduleBuilder& Straggler(int node, double cpu_factor, SimTime from,
                                  SimTime to = -1);

  // Byzantine windows. The explicit-node forms name the adversaries; the
  // Fraction forms let the injector pick round(fraction * n) of them
  // deterministically (max(1, ...), strided across the deployment).
  FaultScheduleBuilder& Equivocate(std::vector<int> nodes, SimTime from,
                                   SimTime to = -1);
  FaultScheduleBuilder& EquivocateFraction(double fraction, SimTime from,
                                           SimTime to = -1);
  FaultScheduleBuilder& DoubleVote(std::vector<int> nodes, SimTime from,
                                   SimTime to = -1);
  FaultScheduleBuilder& DoubleVoteFraction(double fraction, SimTime from,
                                           SimTime to = -1);
  FaultScheduleBuilder& WithholdVotes(std::vector<int> nodes, SimTime from,
                                      SimTime to = -1);
  FaultScheduleBuilder& WithholdVotesFraction(double fraction, SimTime from,
                                              SimTime to = -1);
  FaultScheduleBuilder& Censor(std::vector<int> nodes,
                               std::vector<int> signers, SimTime from,
                               SimTime to = -1);
  FaultScheduleBuilder& CensorFraction(double fraction,
                                       std::vector<int> signers, SimTime from,
                                       SimTime to = -1);
  FaultScheduleBuilder& LazyProposer(std::vector<int> nodes, SimTime from,
                                     SimTime to = -1);
  FaultScheduleBuilder& LazyProposerFraction(double fraction, SimTime from,
                                             SimTime to = -1);

  FaultSchedule Build() { return std::move(schedule_); }

 private:
  FaultSchedule schedule_;
};

}  // namespace diablo

#endif  // SRC_FAULT_SCHEDULE_H_
