#include "src/fault/injector.h"

#include <cmath>
#include <utility>

namespace diablo {
namespace {

// Which ValidatorTable behavior bit a Byzantine fault kind arms.
uint8_t AdversaryBitsFor(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEquivocate:
      return kAdversaryEquivocate;
    case FaultKind::kDoubleVote:
      return kAdversaryDoubleVote;
    case FaultKind::kWithholdVotes:
      return kAdversaryWithhold;
    case FaultKind::kCensor:
      return kAdversaryCensor;
    case FaultKind::kLazyProposer:
      return kAdversaryLazy;
    default:
      return 0;
  }
}

}  // namespace

FaultInjector::FaultInjector(FaultSchedule schedule, ChainContext* ctx)
    : schedule_(std::move(schedule)), ctx_(ctx) {}

std::vector<int> FaultInjector::PartitionNodes(const FaultEvent& event) const {
  if (!event.by_region) {
    return event.nodes;
  }
  std::vector<int> nodes;
  for (int node = 0; node < ctx_->node_count(); ++node) {
    if (ctx_->deployment().NodeRegion(node) == event.region) {
      nodes.push_back(node);
    }
  }
  return nodes;
}

std::vector<int> FaultInjector::AdversaryNodes(const FaultEvent& event) const {
  if (!event.nodes.empty()) {
    return event.nodes;
  }
  const int n = ctx_->node_count();
  const int count = std::max(
      1, static_cast<int>(std::lround(event.fraction * static_cast<double>(n))));
  std::vector<int> nodes;
  nodes.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Stride evenly across the deployment; distinct for count <= n.
    nodes.push_back(static_cast<int>((static_cast<int64_t>(i) * n) / count));
  }
  return nodes;
}

bool FaultInjector::Install(std::string* error) {
  if (!schedule_.Validate(ctx_->node_count(), error)) {
    return false;
  }
  Simulation* sim = ctx_->sim();
  Network* net = ctx_->net();
  for (const FaultEvent& event : schedule_.events) {
    switch (event.kind) {
      case FaultKind::kCrash: {
        const int node = event.node;
        sim->ScheduleAt(event.at, [this, node] {
          ctx_->SetNodeDown(node, true);
          ++stats_.crashes;
        });
        if (event.until >= 0) {
          sim->ScheduleAt(event.until, [this, node] {
            ctx_->SetNodeDown(node, false);
            ++stats_.restarts;
          });
        }
        break;
      }
      case FaultKind::kPartition: {
        // Unlike a crash, a partitioned node stays alive behind the cut: it
        // only becomes unreachable, and rejoins untouched at heal time.
        const std::vector<int> nodes = PartitionNodes(event);
        sim->ScheduleAt(event.at, [this, net, nodes] {
          for (const int node : nodes) {
            net->SetPartitioned(ctx_->hosts()[static_cast<size_t>(node)], true);
          }
          ++stats_.partitions;
        });
        if (event.until >= 0) {
          sim->ScheduleAt(event.until, [this, net, nodes] {
            for (const int node : nodes) {
              net->SetPartitioned(ctx_->hosts()[static_cast<size_t>(node)], false);
            }
            ++stats_.heals;
          });
        }
        break;
      }
      case FaultKind::kLoss:
        // Loss windows are time-gated inside the network; register now.
        if (event.region_pair) {
          net->AddLossWindow(event.pair_a, event.pair_b, event.at, event.until,
                             event.loss_rate);
        } else {
          net->AddLossWindow(event.at, event.until, event.loss_rate);
        }
        ++stats_.loss_windows;
        break;
      case FaultKind::kDelaySpike: {
        const auto set_extra = [this, net, event](SimDuration extra) {
          if (event.region_pair) {
            net->SetExtraDelay(event.pair_a, event.pair_b, extra);
            return;
          }
          for (int a = 0; a < kRegionCount; ++a) {
            for (int b = a; b < kRegionCount; ++b) {
              net->SetExtraDelay(static_cast<Region>(a), static_cast<Region>(b),
                                 extra);
            }
          }
        };
        const SimDuration extra = event.extra_delay;
        sim->ScheduleAt(event.at, [this, set_extra, extra] {
          set_extra(extra);
          ++stats_.delay_spikes;
        });
        if (event.until >= 0) {
          sim->ScheduleAt(event.until, [set_extra] { set_extra(0); });
        }
        // Mirror the scheduled mutations in the network's spike registry so
        // the windowed scheduler's window-aware lookahead can account for
        // the spike. Registration order matches the push order of the
        // onset/heal events above, which is what MinLinkDelayInWindow's
        // writer replay assumes for same-instant ties.
        if (event.region_pair) {
          net->AddDelaySpikeWindow(event.pair_a, event.pair_b, event.at,
                                   event.until, extra);
        } else {
          net->AddDelaySpikeWindow(event.at, event.until, extra);
        }
        break;
      }
      case FaultKind::kStraggler: {
        const int node = event.node;
        const double factor = event.cpu_factor;
        sim->ScheduleAt(event.at, [this, node, factor] {
          ctx_->SetCpuFactor(node, factor);
          ++stats_.stragglers;
        });
        if (event.until >= 0) {
          sim->ScheduleAt(event.until,
                          [this, node] { ctx_->SetCpuFactor(node, 1.0); });
        }
        break;
      }
      case FaultKind::kEquivocate:
      case FaultKind::kDoubleVote:
      case FaultKind::kWithholdVotes:
      case FaultKind::kCensor:
      case FaultKind::kLazyProposer: {
        // Byzantine windows arm behavior bits on the resolved adversaries;
        // the consensus engines react to the bits, not to the schedule.
        const std::vector<int> nodes = AdversaryNodes(event);
        const uint8_t bits = AdversaryBitsFor(event.kind);
        const FaultKind kind = event.kind;
        std::vector<uint32_t> signers(event.censored_signers.begin(),
                                      event.censored_signers.end());
        sim->ScheduleAt(event.at, [this, nodes, bits, kind, signers] {
          for (const int node : nodes) {
            ctx_->SetAdversary(node, bits, true);
          }
          switch (kind) {
            case FaultKind::kEquivocate:
              ++stats_.equivocate_windows;
              break;
            case FaultKind::kDoubleVote:
              ++stats_.double_vote_windows;
              break;
            case FaultKind::kWithholdVotes:
              ++stats_.withhold_windows;
              break;
            case FaultKind::kCensor:
              ctx_->SetCensoredSigners(signers);
              ++stats_.censor_windows;
              break;
            case FaultKind::kLazyProposer:
              ++stats_.lazy_windows;
              break;
            default:
              break;
          }
        });
        if (event.until >= 0) {
          sim->ScheduleAt(event.until, [this, nodes, bits, kind] {
            for (const int node : nodes) {
              ctx_->SetAdversary(node, bits, false);
            }
            if (kind == FaultKind::kCensor) {
              ctx_->ClearCensoredSigners();
            }
          });
        }
        break;
      }
      case FaultKind::kCount:
        break;
    }
  }
  return true;
}

}  // namespace diablo
