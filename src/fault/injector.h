// Executes a FaultSchedule against one chain deployment by translating
// every declared fault into ordinary simulation events before the run
// starts. All state changes go through the same deterministic event loop
// as the protocol itself, so a fault run replays bit-identically from its
// seed and is invariant to DIABLO_JOBS.
#ifndef SRC_FAULT_INJECTOR_H_
#define SRC_FAULT_INJECTOR_H_

#include <string>

#include "src/chain/node.h"
#include "src/fault/schedule.h"

namespace diablo {

// What the injector actually did, for run summaries.
struct FaultStats {
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t partitions = 0;  // partition onsets (node sets, not nodes)
  uint64_t heals = 0;       // partition heals
  uint64_t loss_windows = 0;
  uint64_t delay_spikes = 0;
  uint64_t stragglers = 0;
  // Byzantine window onsets, by behavior.
  uint64_t equivocate_windows = 0;
  uint64_t double_vote_windows = 0;
  uint64_t withhold_windows = 0;
  uint64_t censor_windows = 0;
  uint64_t lazy_windows = 0;
};

class FaultInjector {
 public:
  FaultInjector(FaultSchedule schedule, ChainContext* ctx);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Validates the schedule against the deployment and arms every fault as
  // simulation events. Call once, before the run starts; the injector must
  // outlive the run (scheduled events point back into it). Returns false
  // and fills *error when the schedule is invalid; nothing is armed then.
  bool Install(std::string* error);

  const FaultStats& stats() const { return stats_; }
  const FaultSchedule& schedule() const { return schedule_; }

 private:
  // Node indices a partition event covers (explicit set or whole region).
  std::vector<int> PartitionNodes(const FaultEvent& event) const;

  // Adversaries a Byzantine event arms: the explicit node set, or — for a
  // fractional scope — max(1, round(fraction * n)) nodes strided evenly
  // across the deployment, so the choice is deterministic and spreads over
  // regions the way a real infiltration would.
  std::vector<int> AdversaryNodes(const FaultEvent& event) const;

  FaultSchedule schedule_;
  ChainContext* ctx_;
  FaultStats stats_;
};

}  // namespace diablo

#endif  // SRC_FAULT_INJECTOR_H_
