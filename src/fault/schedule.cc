#include "src/fault/schedule.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/support/strings.h"

namespace diablo {
namespace {

constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

SimTime WindowEnd(const FaultEvent& event) {
  return event.until < 0 ? kForever : event.until;
}

bool Overlaps(const FaultEvent& a, const FaultEvent& b) {
  return a.at < WindowEnd(b) && b.at < WindowEnd(a);
}

// Whether two events of the same kind act on the same scope, i.e. an
// overlap between them would be ambiguous (node crashed while crashed,
// two loss rates on one link).
bool SameScope(const FaultEvent& a, const FaultEvent& b) {
  switch (a.kind) {
    case FaultKind::kCrash:
    case FaultKind::kStraggler:
      return a.node == b.node;
    case FaultKind::kPartition: {
      if (a.by_region || b.by_region) {
        return a.by_region && b.by_region && a.region == b.region;
      }
      for (const int node : a.nodes) {
        if (std::find(b.nodes.begin(), b.nodes.end(), node) != b.nodes.end()) {
          return true;
        }
      }
      return false;
    }
    case FaultKind::kLoss:
    case FaultKind::kDelaySpike: {
      if (a.region_pair != b.region_pair) {
        // A link-scoped window under an all-links window is still one rate
        // per cause; allow the combination.
        return false;
      }
      if (!a.region_pair) {
        return true;  // both cover every link
      }
      const auto key = [](const FaultEvent& e) {
        return std::minmax(e.pair_a, e.pair_b);
      };
      return key(a) == key(b);
    }
  }
  return false;
}

bool EventError(const FaultEvent& event, const std::string& what,
                std::string* error) {
  *error = StrFormat("%s fault at t=%.3fs: %s", FaultKindName(event.kind),
                     ToSeconds(event.at), what.c_str());
  return false;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kDelaySpike:
      return "delay";
    case FaultKind::kStraggler:
      return "straggler";
  }
  return "unknown";
}

bool FaultSchedule::Validate(int node_count, std::string* error) const {
  for (const FaultEvent& event : events) {
    if (event.at < 0) {
      return EventError(event, "negative onset time", error);
    }
    if (event.until >= 0 && event.until <= event.at) {
      return EventError(event, "heal time must be after onset", error);
    }
    const auto check_node = [&](int node) {
      if (node < 0) {
        return EventError(event, "missing node index", error);
      }
      if (node_count >= 0 && node >= node_count) {
        return EventError(
            event,
            StrFormat("unknown host: node %d of a %d-node deployment", node,
                      node_count),
            error);
      }
      return true;
    };
    switch (event.kind) {
      case FaultKind::kCrash:
        if (!check_node(event.node)) {
          return false;
        }
        break;
      case FaultKind::kStraggler:
        if (!check_node(event.node)) {
          return false;
        }
        if (!(event.cpu_factor > 0.0) || event.cpu_factor > 1.0) {
          return EventError(event, "cpu_factor must be in (0, 1]", error);
        }
        break;
      case FaultKind::kPartition:
        if (!event.by_region) {
          if (event.nodes.empty()) {
            return EventError(event, "empty node set", error);
          }
          for (const int node : event.nodes) {
            if (!check_node(node)) {
              return false;
            }
          }
        }
        break;
      case FaultKind::kLoss:
        if (event.loss_rate < 0.0 || event.loss_rate > 1.0) {
          return EventError(event, "loss rate must be in [0, 1]", error);
        }
        break;
      case FaultKind::kDelaySpike:
        if (event.extra_delay < 0) {
          return EventError(event, "negative extra delay", error);
        }
        break;
    }
  }
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      const FaultEvent& a = events[i];
      const FaultEvent& b = events[j];
      if (a.kind == b.kind && SameScope(a, b) && Overlaps(a, b)) {
        return EventError(
            b,
            StrFormat("overlaps an earlier %s window on the same scope",
                      FaultKindName(a.kind)),
            error);
      }
    }
  }
  return true;
}

std::vector<SimTime> FaultSchedule::HealTimes() const {
  std::vector<SimTime> heals;
  for (const FaultEvent& event : events) {
    if (event.until >= 0) {
      heals.push_back(event.until);
    }
  }
  std::sort(heals.begin(), heals.end());
  return heals;
}

FaultScheduleBuilder& FaultScheduleBuilder::Crash(int node, SimTime at,
                                                  SimTime restart) {
  FaultEvent event;
  event.kind = FaultKind::kCrash;
  event.node = node;
  event.at = at;
  event.until = restart;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::Partition(std::vector<int> nodes,
                                                      SimTime from, SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kPartition;
  event.nodes = std::move(nodes);
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::PartitionRegion(Region region,
                                                            SimTime from,
                                                            SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kPartition;
  event.by_region = true;
  event.region = region;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::Loss(double rate, SimTime from,
                                                 SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kLoss;
  event.loss_rate = rate;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::LossBetween(Region a, Region b,
                                                        double rate, SimTime from,
                                                        SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kLoss;
  event.region_pair = true;
  event.pair_a = a;
  event.pair_b = b;
  event.loss_rate = rate;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::DelaySpike(SimDuration extra,
                                                       SimTime from, SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kDelaySpike;
  event.extra_delay = extra;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::DelaySpikeBetween(Region a, Region b,
                                                              SimDuration extra,
                                                              SimTime from,
                                                              SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kDelaySpike;
  event.region_pair = true;
  event.pair_a = a;
  event.pair_b = b;
  event.extra_delay = extra;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::Straggler(int node, double cpu_factor,
                                                      SimTime from, SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kStraggler;
  event.node = node;
  event.cpu_factor = cpu_factor;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

}  // namespace diablo
