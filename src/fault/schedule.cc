#include "src/fault/schedule.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/support/strings.h"

namespace diablo {
namespace {

constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

SimTime WindowEnd(const FaultEvent& event) {
  return event.until < 0 ? kForever : event.until;
}

bool Overlaps(const FaultEvent& a, const FaultEvent& b) {
  return a.at < WindowEnd(b) && b.at < WindowEnd(a);
}

// Whether two events of the same kind act on the same scope, i.e. an
// overlap between them would be ambiguous (node crashed while crashed,
// two loss rates on one link).
// Whether two explicit adversary node sets intersect.
bool NodesIntersect(const std::vector<int>& a, const std::vector<int>& b) {
  for (const int node : a) {
    if (std::find(b.begin(), b.end(), node) != b.end()) {
      return true;
    }
  }
  return false;
}

bool SameScope(const FaultEvent& a, const FaultEvent& b) {
  switch (a.kind) {
    case FaultKind::kCrash:
    case FaultKind::kStraggler:
      return a.node == b.node;
    case FaultKind::kEquivocate:
    case FaultKind::kDoubleVote:
    case FaultKind::kWithholdVotes:
    case FaultKind::kLazyProposer:
      // A fractional window resolves to an injector-chosen node set, so it
      // can collide with any same-kind window; explicit sets conflict only
      // when they intersect.
      if (a.fraction > 0.0 || b.fraction > 0.0) {
        return true;
      }
      return NodesIntersect(a.nodes, b.nodes);
    case FaultKind::kCensor:
      // The censored-signer set is a single piece of global state, so any
      // two censor windows are ambiguous when they overlap.
      return true;
    case FaultKind::kCount:
      return false;
    case FaultKind::kPartition: {
      if (a.by_region || b.by_region) {
        return a.by_region && b.by_region && a.region == b.region;
      }
      for (const int node : a.nodes) {
        if (std::find(b.nodes.begin(), b.nodes.end(), node) != b.nodes.end()) {
          return true;
        }
      }
      return false;
    }
    case FaultKind::kLoss:
    case FaultKind::kDelaySpike: {
      if (a.region_pair != b.region_pair) {
        // A link-scoped window under an all-links window is still one rate
        // per cause; allow the combination.
        return false;
      }
      if (!a.region_pair) {
        return true;  // both cover every link
      }
      const auto key = [](const FaultEvent& e) {
        return std::minmax(e.pair_a, e.pair_b);
      };
      return key(a) == key(b);
    }
  }
  return false;
}

bool EventError(const FaultEvent& event, const std::string& what,
                std::string* error) {
  *error = StrFormat("%s fault at t=%.3fs: %s", FaultKindName(event.kind),
                     ToSeconds(event.at), what.c_str());
  return false;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kDelaySpike:
      return "delay";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kEquivocate:
      return "equivocate";
    case FaultKind::kDoubleVote:
      return "double-vote";
    case FaultKind::kWithholdVotes:
      return "withhold";
    case FaultKind::kCensor:
      return "censor";
    case FaultKind::kLazyProposer:
      return "lazy";
    case FaultKind::kCount:
      break;
  }
  return "unknown";
}

bool IsByzantine(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEquivocate:
    case FaultKind::kDoubleVote:
    case FaultKind::kWithholdVotes:
    case FaultKind::kCensor:
    case FaultKind::kLazyProposer:
      return true;
    default:
      return false;
  }
}

bool FaultSchedule::Validate(int node_count, std::string* error) const {
  for (const FaultEvent& event : events) {
    if (event.at < 0) {
      return EventError(event, "negative onset time", error);
    }
    if (event.until >= 0 && event.until == event.at) {
      return EventError(event, "zero-duration window", error);
    }
    if (event.until >= 0 && event.until < event.at) {
      return EventError(event, "heal time must be after onset", error);
    }
    const auto check_node = [&](int node) {
      if (node < 0) {
        return EventError(event, "missing node index", error);
      }
      if (node_count >= 0 && node >= node_count) {
        return EventError(
            event,
            StrFormat("unknown host: node %d of a %d-node deployment", node,
                      node_count),
            error);
      }
      return true;
    };
    switch (event.kind) {
      case FaultKind::kCrash:
        if (!check_node(event.node)) {
          return false;
        }
        break;
      case FaultKind::kStraggler:
        if (!check_node(event.node)) {
          return false;
        }
        if (!(event.cpu_factor > 0.0) || event.cpu_factor > 1.0) {
          return EventError(event, "cpu_factor must be in (0, 1]", error);
        }
        break;
      case FaultKind::kPartition:
        if (!event.by_region) {
          if (event.nodes.empty()) {
            return EventError(event, "empty node set", error);
          }
          for (const int node : event.nodes) {
            if (!check_node(node)) {
              return false;
            }
          }
        }
        break;
      case FaultKind::kLoss:
        if (event.loss_rate < 0.0 || event.loss_rate > 1.0) {
          return EventError(event, "loss rate must be in [0, 1]", error);
        }
        break;
      case FaultKind::kDelaySpike:
        if (event.extra_delay < 0) {
          return EventError(event, "negative extra delay", error);
        }
        break;
      case FaultKind::kEquivocate:
      case FaultKind::kDoubleVote:
      case FaultKind::kWithholdVotes:
      case FaultKind::kCensor:
      case FaultKind::kLazyProposer: {
        const bool has_nodes = !event.nodes.empty();
        const bool has_fraction = event.fraction != 0.0;
        if (has_nodes == has_fraction) {
          return EventError(
              event, "give exactly one of an explicit node set or a fraction",
              error);
        }
        if (has_fraction &&
            !(event.fraction > 0.0 && event.fraction < 1.0)) {
          return EventError(event, "fraction must be in (0, 1)", error);
        }
        for (const int node : event.nodes) {
          if (!check_node(node)) {
            return false;
          }
        }
        if (event.kind == FaultKind::kCensor) {
          if (event.censored_signers.empty()) {
            return EventError(event, "empty censored signer set", error);
          }
          for (const int signer : event.censored_signers) {
            if (signer < 0) {
              return EventError(event, "negative censored signer id", error);
            }
          }
        }
        break;
      }
      case FaultKind::kCount:
        return EventError(event, "invalid fault kind", error);
    }
  }
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      const FaultEvent& a = events[i];
      const FaultEvent& b = events[j];
      if (a.kind == b.kind && SameScope(a, b) && Overlaps(a, b)) {
        return EventError(
            b,
            StrFormat("overlaps an earlier %s window on the same scope",
                      FaultKindName(a.kind)),
            error);
      }
    }
  }
  return true;
}

std::vector<SimTime> FaultSchedule::HealTimes() const {
  std::vector<SimTime> heals;
  for (const FaultEvent& event : events) {
    if (event.until >= 0) {
      heals.push_back(event.until);
    }
  }
  std::sort(heals.begin(), heals.end());
  return heals;
}

FaultScheduleBuilder& FaultScheduleBuilder::Crash(int node, SimTime at,
                                                  SimTime restart) {
  FaultEvent event;
  event.kind = FaultKind::kCrash;
  event.node = node;
  event.at = at;
  event.until = restart;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::Partition(std::vector<int> nodes,
                                                      SimTime from, SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kPartition;
  event.nodes = std::move(nodes);
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::PartitionRegion(Region region,
                                                            SimTime from,
                                                            SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kPartition;
  event.by_region = true;
  event.region = region;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::Loss(double rate, SimTime from,
                                                 SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kLoss;
  event.loss_rate = rate;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::LossBetween(Region a, Region b,
                                                        double rate, SimTime from,
                                                        SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kLoss;
  event.region_pair = true;
  event.pair_a = a;
  event.pair_b = b;
  event.loss_rate = rate;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::DelaySpike(SimDuration extra,
                                                       SimTime from, SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kDelaySpike;
  event.extra_delay = extra;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::DelaySpikeBetween(Region a, Region b,
                                                              SimDuration extra,
                                                              SimTime from,
                                                              SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kDelaySpike;
  event.region_pair = true;
  event.pair_a = a;
  event.pair_b = b;
  event.extra_delay = extra;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::Straggler(int node, double cpu_factor,
                                                      SimTime from, SimTime to) {
  FaultEvent event;
  event.kind = FaultKind::kStraggler;
  event.node = node;
  event.cpu_factor = cpu_factor;
  event.at = from;
  event.until = to;
  schedule_.events.push_back(std::move(event));
  return *this;
}

namespace {

FaultEvent ByzantineEvent(FaultKind kind, std::vector<int> nodes,
                          double fraction, SimTime from, SimTime to) {
  FaultEvent event;
  event.kind = kind;
  event.nodes = std::move(nodes);
  event.fraction = fraction;
  event.at = from;
  event.until = to;
  return event;
}

}  // namespace

FaultScheduleBuilder& FaultScheduleBuilder::Equivocate(std::vector<int> nodes,
                                                       SimTime from, SimTime to) {
  schedule_.events.push_back(
      ByzantineEvent(FaultKind::kEquivocate, std::move(nodes), 0, from, to));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::EquivocateFraction(double fraction,
                                                               SimTime from,
                                                               SimTime to) {
  schedule_.events.push_back(
      ByzantineEvent(FaultKind::kEquivocate, {}, fraction, from, to));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::DoubleVote(std::vector<int> nodes,
                                                       SimTime from, SimTime to) {
  schedule_.events.push_back(
      ByzantineEvent(FaultKind::kDoubleVote, std::move(nodes), 0, from, to));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::DoubleVoteFraction(double fraction,
                                                               SimTime from,
                                                               SimTime to) {
  schedule_.events.push_back(
      ByzantineEvent(FaultKind::kDoubleVote, {}, fraction, from, to));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::WithholdVotes(std::vector<int> nodes,
                                                          SimTime from,
                                                          SimTime to) {
  schedule_.events.push_back(
      ByzantineEvent(FaultKind::kWithholdVotes, std::move(nodes), 0, from, to));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::WithholdVotesFraction(
    double fraction, SimTime from, SimTime to) {
  schedule_.events.push_back(
      ByzantineEvent(FaultKind::kWithholdVotes, {}, fraction, from, to));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::Censor(std::vector<int> nodes,
                                                   std::vector<int> signers,
                                                   SimTime from, SimTime to) {
  FaultEvent event =
      ByzantineEvent(FaultKind::kCensor, std::move(nodes), 0, from, to);
  event.censored_signers = std::move(signers);
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::CensorFraction(
    double fraction, std::vector<int> signers, SimTime from, SimTime to) {
  FaultEvent event =
      ByzantineEvent(FaultKind::kCensor, {}, fraction, from, to);
  event.censored_signers = std::move(signers);
  schedule_.events.push_back(std::move(event));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::LazyProposer(std::vector<int> nodes,
                                                         SimTime from,
                                                         SimTime to) {
  schedule_.events.push_back(
      ByzantineEvent(FaultKind::kLazyProposer, std::move(nodes), 0, from, to));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::LazyProposerFraction(double fraction,
                                                                 SimTime from,
                                                                 SimTime to) {
  schedule_.events.push_back(
      ByzantineEvent(FaultKind::kLazyProposer, {}, fraction, from, to));
  return *this;
}

}  // namespace diablo
