#include "src/contracts/contracts.h"

#include <cstdio>
#include <cstdlib>

#include "src/vm/assembler.h"

namespace diablo {
namespace {

// ExchangeContractGafam. Storage: keys 1..5 hold the remaining supply of
// GOOGL, AAPL, FB, AMZN, MSFT. Each buy checks availability, decrements the
// counter and emits the new supply (§3, Exchange DApp).
constexpr char kExchangeSource[] = R"(
; --- ExchangeContractGafam ---
.func init            ; init(supply): seed all five stocks
  push 1
  arg 0
  sstore
  push 2
  arg 0
  sstore
  push 3
  arg 0
  sstore
  push 4
  arg 0
  sstore
  push 5
  arg 0
  sstore
  stop

.func check_stock     ; check_stock(stock_key) -> supply
  arg 0
  sload
  return

.func buy_google
  push 1
  sload
  dup 0
  push 0
  gt
  jumpi g_ok
  revert
g_ok:
  push 1
  sub               ; supply - 1
  dup 0
  push 1
  swap 1
  sstore            ; state[1] = supply - 1
  emit 1
  stop

.func buy_apple
  push 2
  sload
  dup 0
  push 0
  gt
  jumpi a_ok
  revert
a_ok:
  push 1
  sub
  dup 0
  push 2
  swap 1
  sstore
  emit 1
  stop

.func buy_facebook
  push 3
  sload
  dup 0
  push 0
  gt
  jumpi f_ok
  revert
f_ok:
  push 1
  sub
  dup 0
  push 3
  swap 1
  sstore
  emit 1
  stop

.func buy_amazon
  push 4
  sload
  dup 0
  push 0
  gt
  jumpi z_ok
  revert
z_ok:
  push 1
  sub
  dup 0
  push 4
  swap 1
  sstore
  emit 1
  stop

.func buy_microsoft
  push 5
  sload
  dup 0
  push 0
  gt
  jumpi m_ok
  revert
m_ok:
  push 1
  sub
  dup 0
  push 5
  swap 1
  sstore
  emit 1
  stop
)";

// DecentralizedDota. Storage per player i (0..9): key 100+4i = x,
// 101+4i = x direction, 102+4i = y, 103+4i = y direction. update(dx, dy)
// moves every player by dir*step on each axis and turns back at the borders
// of the 250x250 map (§3, Gaming DApp).
constexpr char kDotaSource[] = R"(
; --- DecentralizedDota ---
.func init            ; spread players over the map, directions +1
  push 0
di_loop:
  dup 0
  push 10
  lt
  jumpi di_body
  pop
  stop
di_body:
  dup 0
  push 4
  mul
  push 100
  add
  dup 1
  push 25
  mul
  sstore            ; x_i = 25 * i
  dup 0
  push 4
  mul
  push 101
  add
  push 1
  sstore            ; xdir_i = 1
  dup 0
  push 4
  mul
  push 102
  add
  dup 1
  push 20
  mul
  sstore            ; y_i = 20 * i
  dup 0
  push 4
  mul
  push 103
  add
  push 1
  sstore            ; ydir_i = 1
  push 1
  add
  jump di_loop

.func update          ; update(dx, dy)
  push 0
du_loop:
  dup 0
  push 10
  lt
  jumpi du_body
  pop
  stop
du_body:
  ; ----- x axis -----
  dup 0
  push 4
  mul
  push 100
  add               ; [i, kx]
  dup 0
  sload             ; [i, kx, x]
  dup 1
  push 1
  add
  sload             ; [i, kx, x, dir]
  arg 0
  mul
  add               ; [i, kx, x']
  dup 0
  push 249
  gt
  jumpi px_hi
  dup 0
  push 0
  lt
  jumpi px_lo
  dup 1
  swap 1
  sstore            ; state[kx] = x'
  jump px_done
px_hi:
  pop
  push 249
  dup 1
  swap 1
  sstore            ; clamp to the border
  dup 0
  push 1
  add
  push -1
  sstore            ; turn back
  jump px_done
px_lo:
  pop
  push 0
  dup 1
  swap 1
  sstore
  dup 0
  push 1
  add
  push 1
  sstore
px_done:
  pop               ; [i]
  ; ----- y axis -----
  dup 0
  push 4
  mul
  push 102
  add               ; [i, ky]
  dup 0
  sload
  dup 1
  push 1
  add
  sload
  arg 1
  mul
  add               ; [i, ky, y']
  dup 0
  push 249
  gt
  jumpi py_hi
  dup 0
  push 0
  lt
  jumpi py_lo
  dup 1
  swap 1
  sstore
  jump py_done
py_hi:
  pop
  push 249
  dup 1
  swap 1
  sstore
  dup 0
  push 1
  add
  push -1
  sstore
  jump py_done
py_lo:
  pop
  push 0
  dup 1
  swap 1
  sstore
  dup 0
  push 1
  add
  push 1
  sstore
py_done:
  pop               ; [i]
  push 1
  add
  jump du_loop
)";

// Counter (FIFA web service): one highly contended slot (§3, Web service
// DApp).
constexpr char kCounterSource[] = R"(
; --- Counter ---
.func add
  push 1
  dup 0
  sload
  push 1
  add
  sstore
  stop

.func get
  push 1
  sload
  return
)";

// ContractUber. Storage: keys 10/11 hold the reference driver position.
// check_distance(cx, cy) computes 10,000 Euclidean distances with Newton's
// integer square root and returns the minimum — the computation profile of
// the paper's PyTeal variant, which stores one driver and computes the
// distance to it 10,000 times (§3, Mobility service DApp).
constexpr char kUberSource[] = R"(
; --- ContractUber ---
.func init            ; init(x, y): place the reference driver
  push 10
  arg 0
  sstore
  push 11
  arg 1
  sstore
  stop

.func isqrt           ; isqrt(n): exact floor square root, Newton's method
  arg 0
  dup 0               ; [n, x=n]
  dup 0
  push 1
  add
  push 2
  div                 ; [n, x, y=(n+1)/2]
si_loop:
  dup 0
  dup 2
  lt                  ; y < x
  jumpi si_step
  pop
  swap 1
  pop                 ; [x]
  return
si_step:
  swap 1
  pop                 ; x = y
  dup 1
  dup 1
  div
  dup 1
  add
  push 2
  div                 ; y = (x + n/x) / 2
  jump si_loop

.func check_distance  ; check_distance(cx, cy) -> min distance over 10,000 probes
  push 10
  sload               ; [drx]
  push 11
  sload               ; [drx, dry]
  push 300000000      ; [drx, dry, best]
  push 0              ; [drx, dry, best, i]
cd_loop:
  dup 0
  push 10000
  lt
  jumpi cd_body
  pop                 ; [drx, dry, best]
  return
cd_body:
  dup 3
  arg 0
  sub                 ; drx - cx
  dup 1
  push 100
  mod
  sub                 ; ddx = drx - cx - (i mod 100)
  dup 0
  mul                 ; [.., i, ddx2]
  dup 3
  arg 1
  sub                 ; dry - cy
  dup 0
  mul                 ; [.., i, ddx2, ddy2]
  add                 ; [drx, dry, best, i, n]
  dup 0
  push 2
  lt
  jumpi cd_small      ; n in {0, 1}: d = n
  push 16384          ; [.., n, x]; sqrt(n) <= 14214 on the 10,000^2 grid
  dup 1
  dup 1
  div
  dup 1
  add
  push 2
  div                 ; [.., n, x, y = (x + n/x) / 2]
  jump cd_isq_loop
cd_small:
  jump cd_min         ; [drx, dry, best, i, d = n]
cd_isq_loop:
  dup 0
  dup 2
  lt
  jumpi cd_isq_step
  pop
  swap 1
  pop                 ; [drx, dry, best, i, d]
  jump cd_min
cd_isq_step:
  swap 1
  pop
  dup 1
  dup 1
  div
  dup 1
  add
  push 2
  div
  jump cd_isq_loop
cd_min:
  dup 0
  dup 3
  lt                  ; d < best
  jumpi cd_newbest
  pop                 ; [drx, dry, best, i]
  jump cd_next
cd_newbest:
  swap 2              ; [drx, dry, d, i, best]
  pop                 ; [drx, dry, d, i]
cd_next:
  push 1
  add
  jump cd_loop
)";

// DecentralizedYoutube. Storage: key 0 = video count; per video, an owner
// record and a data blob whose size is upload()'s argument. The blob write
// is what the AVM's 128-byte state limit rejects (§5.2) (§3, Video sharing
// DApp).
constexpr char kYoutubeSource[] = R"(
; --- DecentralizedYoutube ---
.func upload          ; upload(data_bytes)
  push 0
  sload
  push 1
  add                 ; [count']
  dup 0
  push 0
  swap 1
  sstore              ; state[0] = count'
  dup 0
  push 2
  mul
  push 1000000
  add                 ; [count', k]
  dup 0
  caller
  sstore              ; owner record: state[k] = caller
  push 1
  add                 ; [count', k + 1]
  arg 0
  sstoreb             ; data blob of arg0 bytes
  caller
  emit 2              ; (caller, video id)
  stop

.func count
  push 0
  sload
  return
)";

std::vector<ContractDef> BuildRegistry() {
  std::vector<ContractDef> contracts;
  contracts.push_back(ContractDef{"exchange", "ExchangeContractGafam", kExchangeSource,
                                  {100000000}});
  contracts.push_back(ContractDef{"dota", "DecentralizedDota", kDotaSource, {}});
  contracts.push_back(ContractDef{"counter", "Counter", kCounterSource, {}});
  contracts.push_back(ContractDef{"uber", "ContractUber", kUberSource, {7001, 4203}});
  contracts.push_back(ContractDef{"youtube", "DecentralizedYoutube", kYoutubeSource, {}});
  return contracts;
}

}  // namespace

const std::vector<ContractDef>& AllContracts() {
  static const std::vector<ContractDef>* const kRegistry =
      new std::vector<ContractDef>(BuildRegistry());
  return *kRegistry;
}

const ContractDef* FindContract(std::string_view name) {
  for (const ContractDef& def : AllContracts()) {
    if (def.name == name || def.display_name == name) {
      return &def;
    }
  }
  return nullptr;
}

Program CompileContract(const ContractDef& def) {
  AssembleResult result = Assemble(def.name, def.source);
  if (!result.ok) {
    std::fprintf(stderr, "bundled contract '%s' failed to assemble: %s\n",
                 def.name.c_str(), result.error.c_str());
    std::abort();
  }
  return std::move(result.program);
}

}  // namespace diablo
