// The five DApps of §3, written in the VM's assembly language.
//
// Each contract mirrors the behaviour the paper describes:
//  - exchange  (ExchangeContractGafam): per-stock counters, buy* functions
//    that check availability, decrement and emit an event.
//  - dota      (DecentralizedDota): update() moves 10 players on a 250x250
//    map, turning back at the borders.
//  - counter   (Counter, FIFA web service): add() increments one hot slot.
//  - uber      (ContractUber): checkDistance() computes 10,000 integer-sqrt
//    Euclidean distances (Newton's method — the VM, like PyTeal and Move,
//    has no float or sqrt), making it compute-intensive.
//  - youtube   (DecentralizedYoutube): upload() records the caller and a
//    data blob whose size exceeds AVM's 128-byte state-entry limit.
#ifndef SRC_CONTRACTS_CONTRACTS_H_
#define SRC_CONTRACTS_CONTRACTS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/vm/program.h"

namespace diablo {

struct ContractDef {
  std::string name;          // registry key, e.g. "dota"
  std::string display_name;  // the paper's contract name
  std::string source;        // assembly text
  // Arguments passed to the exported "init" function at deployment, if any.
  std::vector<int64_t> init_args;
};

// All bundled contracts.
const std::vector<ContractDef>& AllContracts();

// nullptr when unknown.
const ContractDef* FindContract(std::string_view name);

// Assembles the contract; aborts on assembly errors (the bundled sources are
// compile-time constants, so failure is a programming error).
Program CompileContract(const ContractDef& def);

}  // namespace diablo

#endif  // SRC_CONTRACTS_CONTRACTS_H_
